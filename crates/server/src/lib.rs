//! Simulation as a service: the `bw-server` daemon and its client
//! library.
//!
//! The repo's sweep methodology (Figures 5–13, the PPD and banking
//! studies) is backed by a supervised, cached, fault-isolated
//! [`Runner`](bw_core::Runner) — but a `Runner` serves one process.
//! This crate wraps it in a long-lived service so many concurrent
//! clients can submit `RunPlan`-shaped sweep requests and stream the
//! per-cell [`RunResult`](bw_core::RunResult)s back as they complete:
//!
//! * **Wire protocol** ([`protocol`]) — length-prefixed, versioned
//!   JSON frames over TCP or Unix sockets. Dependency-free framing
//!   with the `.bwt` format's validate-at-decode discipline: garbage
//!   from the network becomes a typed [`WireError`](protocol::WireError),
//!   never a panic.
//! * **Single-flight dedup** ([`daemon`]) — in-flight work is keyed by
//!   [`RunKey`](bw_core::RunKey) digest; concurrent requests for the
//!   same cell subscribe to one simulation, and completed cells land
//!   in the shared content-addressed run cache.
//! * **Health model** — the quarantine ledger beside the cache is the
//!   daemon's memory of poisoned keys: quarantined cells are refused
//!   fast with a typed error at admission.
//! * **Admission control** — a bounded global run queue and per-client
//!   in-flight quotas; overload sheds with typed backpressure
//!   responses instead of hanging or disconnecting.
//!
//! The [`client`] module is the blocking client used by `bw-client`
//! and the experiment binaries' `--server ADDR` mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
mod net;
pub mod protocol;
pub mod request;

pub use client::{Client, ClientError};
pub use daemon::{Server, ServerConfig};
pub use protocol::{
    CellReply, CellStatus, ClientMsg, RefuseReason, ServerMsg, WireError, MAX_FRAME,
    PROTOCOL_VERSION,
};
pub use request::{predictor_by_label, resolve_cell, CellSpec, RequestError, ResolvedCell};
