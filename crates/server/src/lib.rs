//! Simulation as a service: the `bw-server` daemon and its client
//! library.
//!
//! The repo's sweep methodology (Figures 5–13, the PPD and banking
//! studies) is backed by a supervised, cached, fault-isolated
//! [`Runner`](bw_core::Runner) — but a `Runner` serves one process.
//! This crate wraps it in a long-lived service so many concurrent
//! clients can submit `RunPlan`-shaped sweep requests and stream the
//! per-cell [`RunResult`](bw_core::RunResult)s back as they complete:
//!
//! * **Wire protocol** ([`protocol`]) — length-prefixed, versioned
//!   JSON frames over TCP or Unix sockets. Dependency-free framing
//!   with the `.bwt` format's validate-at-decode discipline: garbage
//!   from the network becomes a typed [`WireError`](protocol::WireError),
//!   never a panic.
//! * **Single-flight dedup** ([`daemon`]) — in-flight work is keyed by
//!   [`RunKey`](bw_core::RunKey) digest; concurrent requests for the
//!   same cell subscribe to one simulation, and completed cells land
//!   in the shared content-addressed run cache.
//! * **Health model** — the quarantine ledger beside the cache is the
//!   daemon's memory of poisoned keys: quarantined cells are refused
//!   fast with a typed error at admission.
//! * **Admission control** — a bounded global run queue and per-client
//!   in-flight quotas; overload sheds with typed backpressure
//!   responses instead of hanging or disconnecting.
//! * **Durability** ([`journal`], [`session`]) — protocol v2 issues
//!   session tokens and keeps a crash-safe, checksummed flight
//!   journal beside the run cache. A restarted daemon replays the
//!   journal, restarts only the missing cells, and lets clients
//!   reconnect with their token to resume exactly the deliveries they
//!   never acknowledged.
//! * **Fair scheduling** ([`sched`]) — the run queue is deficit
//!   round-robin across sessions with a bounded priority lane, so one
//!   session's bulk sweep cannot starve its neighbors.
//!
//! The [`client`] module is the blocking client used by `bw-client`
//! and the experiment binaries' `--server ADDR` mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod journal;
mod net;
pub mod protocol;
pub mod request;
pub mod sched;
pub mod session;

pub use client::{Client, ClientError, RetryPolicy, RetryReport};
pub use daemon::{Server, ServerConfig};
pub use journal::{Journal, JournalRecord, JournalReplay, JOURNAL_FILE};
pub use protocol::{
    CellReply, CellStatus, ClientMsg, RefuseReason, ServerMsg, WireError, MAX_FRAME,
    PROTOCOL_VERSION,
};
pub use request::{predictor_by_label, resolve_cell, CellSpec, RequestError, ResolvedCell};
pub use sched::FairSched;
pub use session::{PendingCell, SessionStore};
