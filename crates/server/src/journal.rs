//! The crash-safe flight journal: the daemon's durable memory of
//! admitted plans, delivery watermarks, and completed digests.
//!
//! The journal is an append-only text file beside the run cache
//! (`<cache>/flight-journal.bwj`). Each line is one record:
//! a 16-hex-digit FNV-1a checksum of the JSON body, one space, the
//! body. Appends go through [`bw_core::fsutil::append_line`] (the
//! sanctioned append primitive: flushed and fsynced, never rewriting
//! earlier lines), so a crash can tear at most the final line — and
//! the checksum makes a torn tail detectable. Replay mirrors the
//! `.bwt` trace format's validate-at-decode posture: every line is
//! checksummed and shape-checked as it is read, and anything damaged
//! is skipped and counted, never trusted and never a panic.
//!
//! Record kinds:
//!
//! * `session` — a session token was issued. Replay re-adopts the
//!   token (reconnects keep working across a daemon restart) and
//!   keeps the token counter monotonic.
//! * `plan` — a submit was admitted for a session: the request id and
//!   the full cell list. Written *before* admission settles cells, so
//!   a daemon that dies mid-plan still knows the whole plan.
//! * `ack` — the client acknowledged delivered cell indices (the
//!   per-session watermark). Acked cells are never redelivered.
//! * `done` — a flight's result was stored in the run cache, recorded
//!   by key digest. Replay re-enqueues only journaled cells whose
//!   digest has neither a `done` record nor a live cache entry.
//!
//! On startup the daemon replays the journal, rebuilds its session
//! table, restarts orphaned flights, and *compacts*: fully-acked
//! requests are dropped and the survivors are rewritten atomically
//! ([`bw_core::fsutil::atomic_write`]), so the journal stays
//! proportional to outstanding work, not daemon lifetime.
//!
//! This module is a determinism-pass root: replaying the same journal
//! bytes must rebuild the same state on every daemon, so nothing here
//! may read clocks, the environment, or unordered maps.

use std::path::{Path, PathBuf};

use serde::Value;

use crate::protocol::{field, str_field, u64_field, WireError};
use crate::request::CellSpec;

/// The journal's file name inside the cache directory.
pub const JOURNAL_FILE: &str = "flight-journal.bwj";

/// FNV-1a — the repo's stable non-cryptographic hash, shared by the
/// trace codec, the run cache, and this journal's line checksums.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One journal record. See the module docs for when each is written.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    /// A session token was issued.
    Session {
        /// The token.
        token: String,
    },
    /// A submit was admitted for a session.
    Plan {
        /// The owning session.
        token: String,
        /// The client's request id.
        req: u64,
        /// Every cell of the submit, in request order.
        cells: Vec<CellSpec>,
        /// Whether the submit asked for the priority lane.
        priority: bool,
    },
    /// The client acknowledged delivered cells.
    Ack {
        /// The owning session.
        token: String,
        /// The request the indices belong to.
        req: u64,
        /// Acked cell indices.
        cells: Vec<u64>,
    },
    /// A flight's result was stored in the run cache.
    Done {
        /// The completed [`RunKey`](bw_core::RunKey) digest.
        digest: u64,
    },
}

impl JournalRecord {
    /// Serializes to the line-body JSON shape.
    #[must_use]
    pub fn to_value(&self) -> Value {
        match self {
            JournalRecord::Session { token } => Value::Obj(vec![
                ("type".into(), Value::Str("session".into())),
                ("token".into(), Value::Str(token.clone())),
            ]),
            JournalRecord::Plan {
                token,
                req,
                cells,
                priority,
            } => Value::Obj(vec![
                ("type".into(), Value::Str("plan".into())),
                ("token".into(), Value::Str(token.clone())),
                ("req".into(), Value::U64(*req)),
                (
                    "cells".into(),
                    Value::Arr(cells.iter().map(CellSpec::to_value).collect()),
                ),
                ("priority".into(), Value::Bool(*priority)),
            ]),
            JournalRecord::Ack { token, req, cells } => Value::Obj(vec![
                ("type".into(), Value::Str("ack".into())),
                ("token".into(), Value::Str(token.clone())),
                ("req".into(), Value::U64(*req)),
                (
                    "cells".into(),
                    Value::Arr(cells.iter().map(|c| Value::U64(*c)).collect()),
                ),
            ]),
            JournalRecord::Done { digest } => Value::Obj(vec![
                ("type".into(), Value::Str("done".into())),
                ("digest".into(), Value::Str(format!("{digest:016x}"))),
            ]),
        }
    }

    /// Decodes from the line-body JSON shape, validating every field.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] naming the first offense.
    pub fn from_value(v: &Value) -> Result<Self, WireError> {
        let kind = str_field(v, "type")?;
        match kind.as_str() {
            "session" => Ok(JournalRecord::Session {
                token: str_field(v, "token")?,
            }),
            "plan" => {
                let cells = match field(v, "cells")? {
                    Value::Arr(items) => items
                        .iter()
                        .map(CellSpec::from_value)
                        .collect::<Result<Vec<_>, _>>()?,
                    other => {
                        return Err(WireError::Malformed(format!(
                            "plan `cells` must be an array, got {other:?}"
                        )))
                    }
                };
                Ok(JournalRecord::Plan {
                    token: str_field(v, "token")?,
                    req: u64_field(v, "req")?,
                    cells,
                    priority: crate::protocol::bool_field(v, "priority")?,
                })
            }
            "ack" => {
                let cells = match field(v, "cells")? {
                    Value::Arr(items) => items
                        .iter()
                        .map(|item| match item {
                            Value::U64(n) => Ok(*n),
                            other => Err(WireError::Malformed(format!(
                                "ack cells must be indices, got {other:?}"
                            ))),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    other => {
                        return Err(WireError::Malformed(format!(
                            "ack `cells` must be an array, got {other:?}"
                        )))
                    }
                };
                Ok(JournalRecord::Ack {
                    token: str_field(v, "token")?,
                    req: u64_field(v, "req")?,
                    cells,
                })
            }
            "done" => {
                let hex = str_field(v, "digest")?;
                let digest = (hex.len() == 16)
                    .then(|| u64::from_str_radix(&hex, 16).ok())
                    .flatten()
                    .ok_or_else(|| WireError::Malformed(format!("bad done digest `{hex}`")))?;
                Ok(JournalRecord::Done { digest })
            }
            other => Err(WireError::Malformed(format!(
                "unknown journal record type `{other}`"
            ))),
        }
    }

    /// Renders the record as one checksummed journal line (no
    /// trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let body = serde_json::to_string(&self.to_value()).unwrap_or_default();
        format!("{:016x} {body}", fnv1a(body.as_bytes()))
    }

    /// Parses one journal line: checksum, body JSON, record shape.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for a torn, damaged, or misshapen
    /// line.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        let (checksum, body) = line
            .split_once(' ')
            .ok_or_else(|| WireError::Malformed("journal line lacks a checksum".into()))?;
        if checksum.len() != 16 || u64::from_str_radix(checksum, 16).is_err() {
            return Err(WireError::Malformed(format!(
                "bad journal checksum `{checksum}`"
            )));
        }
        if format!("{:016x}", fnv1a(body.as_bytes())) != checksum {
            return Err(WireError::Malformed(
                "journal line fails its checksum (torn tail or damage)".into(),
            ));
        }
        let v = serde_json::parse_value_str(body).map_err(|e| WireError::Malformed(e.0))?;
        JournalRecord::from_value(&v)
    }
}

/// What a journal replay recovered.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Every valid record, in append order.
    pub records: Vec<JournalRecord>,
    /// Lines that failed checksum or shape validation (a crash's torn
    /// tail lands here; so would bit damage).
    pub skipped: usize,
}

/// The append-only flight journal file.
#[derive(Clone, Debug)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// The journal inside cache directory `dir`.
    #[must_use]
    pub fn in_dir(dir: &Path) -> Journal {
        Journal {
            path: dir.join(JOURNAL_FILE),
        }
    }

    /// The journal file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record. Best-effort, like the run cache's store: a
    /// full disk degrades durability (a crash loses more progress),
    /// not correctness (completed cells are still in the cache).
    pub fn append(&self, record: &JournalRecord) {
        let _ = bw_core::fsutil::append_line(&self.path, &record.to_line());
    }

    /// Reads every valid record. A missing file is an empty journal;
    /// torn or damaged lines are skipped and counted.
    #[must_use]
    pub fn replay(&self) -> JournalReplay {
        let mut replay = JournalReplay::default();
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return replay;
        };
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            match JournalRecord::from_line(line) {
                Ok(record) => replay.records.push(record),
                Err(_) => replay.skipped += 1,
            }
        }
        replay
    }

    /// Atomically replaces the journal with `records` (compaction).
    /// Readers observe the old complete journal or the new one, never
    /// a torn intermediate.
    pub fn rewrite(&self, records: &[JournalRecord]) {
        let text: String = records
            .iter()
            .map(|r| {
                let mut line = r.to_line();
                line.push('\n');
                line
            })
            .collect();
        let _ = bw_core::fsutil::atomic_write(&self.path, text.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bw-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(seed: u64) -> CellSpec {
        CellSpec {
            benchmark: "gzip".to_string(),
            predictor: "Bim_4k".to_string(),
            warmup_insts: 2000,
            measure_insts: 1000,
            seed,
            banked: false,
        }
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Session {
                token: "sess-000000000001".to_string(),
            },
            JournalRecord::Plan {
                token: "sess-000000000001".to_string(),
                req: 7,
                cells: vec![spec(1), spec(2)],
                priority: true,
            },
            JournalRecord::Ack {
                token: "sess-000000000001".to_string(),
                req: 7,
                cells: vec![0],
            },
            JournalRecord::Done {
                digest: 0xdead_beef_0102_0304,
            },
        ]
    }

    #[test]
    fn records_round_trip_through_lines() {
        for record in sample_records() {
            let back = JournalRecord::from_line(&record.to_line()).expect("parse back");
            assert_eq!(back, record);
        }
    }

    #[test]
    fn append_replay_round_trips_and_tolerates_a_torn_tail() {
        let dir = temp_dir("torn");
        let journal = Journal::in_dir(&dir);
        let records = sample_records();
        for r in &records {
            journal.append(r);
        }
        // Simulate a crash mid-append: a final line with no newline
        // and half its bytes missing.
        let torn = records[1].to_line();
        let mut bytes = std::fs::read(journal.path()).unwrap();
        bytes.extend_from_slice(torn[..torn.len() / 2].as_bytes());
        std::fs::write(journal.path(), bytes).unwrap();

        let replay = journal.replay();
        assert_eq!(replay.records, records, "whole lines all survive");
        assert_eq!(replay.skipped, 1, "the torn tail is skipped, not trusted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_lines_are_skipped_never_panic() {
        let dir = temp_dir("corrupt");
        let journal = Journal::in_dir(&dir);
        for r in sample_records() {
            journal.append(&r);
        }
        let mut bytes = std::fs::read(journal.path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x3f;
        std::fs::write(journal.path(), bytes).unwrap();
        let replay = journal.replay();
        assert!(replay.skipped >= 1, "the damaged line must be counted");
        assert!(replay.records.len() < 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn journal_append(journal: &Journal, records: Vec<JournalRecord>) {
        for r in records {
            journal.append(&r);
        }
    }

    #[test]
    fn rewrite_compacts_atomically() {
        let dir = temp_dir("rewrite");
        let journal = Journal::in_dir(&dir);
        journal_append(&journal, sample_records());
        let keep = vec![JournalRecord::Session {
            token: "sess-000000000001".to_string(),
        }];
        journal.rewrite(&keep);
        let replay = journal.replay();
        assert_eq!(replay.records, keep);
        assert_eq!(replay.skipped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_empty() {
        let journal = Journal::in_dir(Path::new("/nonexistent/bw-journal"));
        let replay = journal.replay();
        assert!(replay.records.is_empty());
        assert_eq!(replay.skipped, 0);
    }
}
