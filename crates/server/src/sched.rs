//! Fair scheduling for the daemon's run queue.
//!
//! The v1 daemon used one global FIFO: a client that submitted a
//! 10,000-cell sweep starved every later client until the sweep
//! drained. [`FairSched`] replaces it with **deficit round-robin
//! across sessions** plus a bounded **priority lane**:
//!
//! * Each session gets its own FIFO lane. Lanes are served in rotation;
//!   at each visit a lane's credit is refilled to the quantum and it is
//!   served up to that many flights before the rotation moves on. A
//!   session's big sweep therefore costs *it* latency, not its
//!   neighbors.
//! * Flights admitted with `priority` bypass the rotation entirely and
//!   are always served first — the lane for small interactive probes
//!   (a single figure's handful of cells) while bulk sweeps grind in
//!   the background. Admission caps how many cells a submit may carry
//!   into the lane, so priority cannot be used to starve the rotation.
//!
//! The scheduler holds key digests, not flights: the flight table
//! stays the single owner of cell state, exactly as with the old
//! FIFO. Everything here is deterministic (`BTreeMap` lanes, explicit
//! rotation order) — this module is a determinism-pass root.

use std::collections::{BTreeMap, VecDeque};

/// One session's FIFO lane.
#[derive(Debug, Default)]
struct Lane {
    queue: VecDeque<u64>,
    credit: u64,
}

/// Deficit round-robin run queue with a priority lane.
#[derive(Debug)]
pub struct FairSched {
    /// Flights that bypass the rotation.
    priority: VecDeque<u64>,
    /// Per-session lanes, keyed by session token.
    lanes: BTreeMap<String, Lane>,
    /// Service order over lanes with queued work.
    rotation: VecDeque<String>,
    /// Flights served from a lane per rotation visit.
    quantum: u64,
    /// Total queued flights across all lanes.
    queued: usize,
}

impl FairSched {
    /// A scheduler serving `quantum` flights per lane visit (clamped
    /// to at least 1).
    #[must_use]
    pub fn new(quantum: u64) -> FairSched {
        FairSched {
            priority: VecDeque::new(),
            lanes: BTreeMap::new(),
            rotation: VecDeque::new(),
            quantum: quantum.max(1),
            queued: 0,
        }
    }

    /// Total flights waiting (both lanes and priority).
    #[must_use]
    pub fn len(&self) -> usize {
        self.queued
    }

    /// Whether nothing is waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Enqueues a flight digest on `lane` (a session token), or on
    /// the priority lane.
    pub fn push(&mut self, lane: &str, digest: u64, priority: bool) {
        self.queued += 1;
        if priority {
            self.priority.push_back(digest);
            return;
        }
        let entry = self.lanes.entry(lane.to_string()).or_default();
        if entry.queue.is_empty() {
            // Lane becomes runnable: join the rotation tail with a
            // fresh quantum.
            self.rotation.push_back(lane.to_string());
            entry.credit = self.quantum;
        }
        entry.queue.push_back(digest);
    }

    /// Dequeues the next flight: priority first, then deficit
    /// round-robin over session lanes.
    pub fn pop(&mut self) -> Option<u64> {
        if let Some(digest) = self.priority.pop_front() {
            self.queued -= 1;
            return Some(digest);
        }
        while let Some(token) = self.rotation.front().cloned() {
            let Some(lane) = self.lanes.get_mut(&token) else {
                self.rotation.pop_front();
                continue;
            };
            if lane.queue.is_empty() {
                self.lanes.remove(&token);
                self.rotation.pop_front();
                continue;
            }
            if lane.credit == 0 {
                // Quantum exhausted: rotate and refill on the next
                // visit.
                self.rotation.rotate_left(1);
                if let Some(next) = self.rotation.front().cloned() {
                    if let Some(next_lane) = self.lanes.get_mut(&next) {
                        next_lane.credit = self.quantum;
                    }
                }
                continue;
            }
            lane.credit -= 1;
            let digest = lane.queue.pop_front();
            if lane.queue.is_empty() {
                self.lanes.remove(&token);
                self.rotation.pop_front();
                if let Some(next) = self.rotation.front().cloned() {
                    if let Some(next_lane) = self.lanes.get_mut(&next) {
                        next_lane.credit = self.quantum;
                    }
                }
            }
            self.queued -= 1;
            return digest;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut FairSched) -> Vec<u64> {
        std::iter::from_fn(|| s.pop()).collect()
    }

    #[test]
    fn round_robin_interleaves_by_quantum() {
        // Session A queues six flights (digests 0..6), B queues two
        // (10, 11). With quantum 2 the service order must be
        // A A B B A A A A: B's small request finishes after four
        // flights instead of waiting out all six of A's.
        let mut s = FairSched::new(2);
        for d in 0..6 {
            s.push("sess-a", d, false);
        }
        for d in 10..12 {
            s.push("sess-b", d, false);
        }
        assert_eq!(s.len(), 8);
        assert_eq!(drain(&mut s), vec![0, 1, 10, 11, 2, 3, 4, 5]);
        assert!(s.is_empty());
    }

    #[test]
    fn priority_lane_preempts_the_rotation() {
        let mut s = FairSched::new(4);
        s.push("sess-a", 1, false);
        s.push("sess-a", 2, false);
        s.push("sess-b", 99, true);
        assert_eq!(s.pop(), Some(99), "priority is always served first");
        assert_eq!(drain(&mut s), vec![1, 2]);
    }

    #[test]
    fn single_lane_degenerates_to_fifo() {
        let mut s = FairSched::new(2);
        for d in 0..5 {
            s.push("only", d, false);
        }
        assert_eq!(drain(&mut s), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lane_rejoining_mid_drain_is_served_fairly() {
        let mut s = FairSched::new(1);
        s.push("a", 1, false);
        s.push("b", 2, false);
        assert_eq!(s.pop(), Some(1));
        // A re-queues while B still waits: B must not be starved.
        s.push("a", 3, false);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn empty_sched_pops_none() {
        let mut s = FairSched::new(8);
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
