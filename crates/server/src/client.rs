//! The blocking client: connect, handshake, submit sweeps, stream
//! replies.
//!
//! Used by the `bw-client` CLI and the figure binaries' `--server`
//! mode. One connection carries any number of requests; replies for a
//! request stream back in completion order and are re-sorted by cell
//! index by [`Client::collect_request`].

use std::io::Write;

use crate::net::Stream;
use crate::protocol::{
    encode_frame, hello, read_frame, CellReply, ClientMsg, ServerMsg, WireError, PROTOCOL_VERSION,
};
use crate::request::CellSpec;

/// A client-side failure: transport, handshake, or a typed error frame
/// from the daemon.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientError {
    /// Transport or decode failure.
    Wire(WireError),
    /// The daemon is not speaking this protocol (or refused the
    /// handshake).
    Handshake(String),
    /// The daemon sent a connection-level [`ServerMsg::Error`] frame.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Handshake(m) => write!(f, "handshake failed: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One connection to a `bw-server` daemon.
pub struct Client {
    stream: Stream,
    quota: u64,
    queue_capacity: u64,
}

impl Client {
    /// Connects to `addr` (TCP `host:port` or `unix:/path`) and runs
    /// the version handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] for transport failures,
    /// [`ClientError::Handshake`] when the peer is not a compatible
    /// daemon.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let mut stream =
            Stream::connect(addr).map_err(|e| ClientError::Wire(WireError::Io(e.to_string())))?;
        send_msg(&mut stream, &hello())?;
        match recv_msg(&mut stream)? {
            Some(ServerMsg::HelloAck {
                protocol,
                quota,
                queue_capacity,
            }) => {
                if protocol != PROTOCOL_VERSION {
                    return Err(ClientError::Handshake(format!(
                        "daemon speaks protocol {protocol}, this client speaks {PROTOCOL_VERSION}"
                    )));
                }
                Ok(Client {
                    stream,
                    quota,
                    queue_capacity,
                })
            }
            Some(ServerMsg::Error { message }) => Err(ClientError::Handshake(message)),
            Some(other) => Err(ClientError::Handshake(format!(
                "expected hello-ack, got {other:?}"
            ))),
            None => Err(ClientError::Handshake(
                "daemon closed the connection during the handshake".to_string(),
            )),
        }
    }

    /// The daemon's per-connection in-flight quota, from the handshake.
    #[must_use]
    pub fn quota(&self) -> u64 {
        self.quota
    }

    /// The daemon's global queue bound, from the handshake.
    #[must_use]
    pub fn queue_capacity(&self) -> u64 {
        self.queue_capacity
    }

    /// Submits one request; replies arrive via [`Client::next_msg`] /
    /// [`Client::collect_request`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] if the frame cannot be sent.
    pub fn submit(&mut self, req: u64, cells: &[CellSpec]) -> Result<(), ClientError> {
        send_msg(
            &mut self.stream,
            &ClientMsg::Submit {
                req,
                cells: cells.to_vec(),
            },
        )
    }

    /// Reads the next server frame; `Ok(None)` is a clean close.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] for transport or decode failures.
    pub fn next_msg(&mut self) -> Result<Option<ServerMsg>, ClientError> {
        recv_msg(&mut self.stream)
    }

    /// Drains replies for request `req` until its `done` frame,
    /// returning the per-cell replies sorted by cell index. Frames for
    /// other requests on this connection are discarded.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] if the daemon sends an error frame,
    /// [`ClientError::Wire`] if the connection dies first.
    pub fn collect_request(&mut self, req: u64) -> Result<Vec<CellReply>, ClientError> {
        let mut replies = Vec::new();
        loop {
            match self.next_msg()? {
                Some(ServerMsg::Cell(reply)) if reply.req == req => replies.push(reply),
                Some(ServerMsg::Done { req: done, .. }) if done == req => break,
                Some(ServerMsg::Error { message }) => return Err(ClientError::Server(message)),
                Some(_) => {}
                None => {
                    return Err(ClientError::Wire(WireError::Closed(
                        "before the request completed".to_string(),
                    )))
                }
            }
        }
        replies.sort_by_key(|r| r.cell);
        Ok(replies)
    }

    /// Submits `cells` as request `req` and waits for all replies —
    /// the common one-shot shape.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`] and [`Client::collect_request`].
    pub fn run_cells(
        &mut self,
        req: u64,
        cells: &[CellSpec],
    ) -> Result<Vec<CellReply>, ClientError> {
        self.submit(req, cells)?;
        self.collect_request(req)
    }

    /// Asks the daemon for its counters: `(executed, queued,
    /// inflight)`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on an error frame, [`ClientError::Wire`]
    /// if the connection dies.
    pub fn stats(&mut self) -> Result<(u64, u64, u64), ClientError> {
        send_msg(&mut self.stream, &ClientMsg::Stats)?;
        loop {
            match self.next_msg()? {
                Some(ServerMsg::Stats {
                    executed,
                    queued,
                    inflight,
                }) => return Ok((executed, queued, inflight)),
                Some(ServerMsg::Error { message }) => return Err(ClientError::Server(message)),
                Some(_) => {}
                None => {
                    return Err(ClientError::Wire(WireError::Closed(
                        "before the stats reply".to_string(),
                    )))
                }
            }
        }
    }

    /// Polite goodbye; consumes the client and closes the connection.
    pub fn bye(mut self) {
        let _ = send_msg(&mut self.stream, &ClientMsg::Bye);
        self.stream.shutdown_both();
    }
}

/// Encodes and writes one client frame, with the `bw-client` fault
/// sites for connection chaos (misbehaving-client tests).
fn send_msg(stream: &mut Stream, msg: &ClientMsg) -> Result<(), ClientError> {
    let frame = encode_frame(&msg.to_value())?;
    #[cfg(feature = "fault-inject")]
    {
        const SITE: &str = "bw-client";
        if bw_fault::injected_conn_drop(SITE) {
            stream.shutdown_both();
            return Err(ClientError::Wire(WireError::Closed(
                "injected client-side connection drop".to_string(),
            )));
        }
        if bw_fault::injected_frame_truncation(SITE) {
            let _ = stream.write_all(&frame[..frame.len() / 2]);
            let _ = stream.flush();
            stream.shutdown_both();
            return Err(ClientError::Wire(WireError::Closed(
                "injected client-side frame truncation".to_string(),
            )));
        }
        if let Some(delay) = bw_fault::injected_slow_write(SITE) {
            let half = frame.len() / 2;
            write_plain(stream, &frame[..half])?;
            std::thread::sleep(delay);
            write_plain(stream, &frame[half..])?;
            return Ok(());
        }
    }
    write_plain(stream, &frame)
}

fn write_plain(stream: &mut Stream, bytes: &[u8]) -> Result<(), ClientError> {
    stream
        .write_all(bytes)
        .and_then(|()| stream.flush())
        .map_err(|e| ClientError::Wire(WireError::Io(e.to_string())))
}

/// Reads and decodes one server frame.
fn recv_msg(stream: &mut Stream) -> Result<Option<ServerMsg>, ClientError> {
    match read_frame(stream)? {
        Some(v) => Ok(Some(ServerMsg::from_value(&v)?)),
        None => Ok(None),
    }
}
