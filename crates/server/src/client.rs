//! The blocking client: connect, handshake, submit sweeps, stream
//! replies.
//!
//! Used by the `bw-client` CLI and the figure binaries' `--server`
//! mode. One connection carries any number of requests; replies for a
//! request stream back in completion order and are re-sorted by cell
//! index by [`Client::collect_request`].
//!
//! Protocol v2 adds durability hooks:
//!
//! * [`Client::connect_with`] presents a saved session token; the
//!   daemon resumes the session and [`Client::resume`] redelivers
//!   every cell the client never [`Client::ack`]ed — the
//!   reconnect-and-resume path after a dropped connection or a daemon
//!   restart.
//! * [`Client::run_cells_with_retry`] wraps the one-shot submit in
//!   capped exponential backoff with deterministic jitter, retrying
//!   only cells the daemon refused with a *retryable* reason
//!   (quota/queue-full backpressure).

use std::io::Write;
use std::time::Duration;

use crate::net::Stream;
use crate::protocol::{
    encode_frame, hello_with, read_frame, CellReply, CellStatus, ClientMsg, ServerMsg, WireError,
    PROTOCOL_VERSION,
};
use crate::request::CellSpec;

/// A client-side failure: transport, handshake, or a typed error frame
/// from the daemon.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientError {
    /// Transport or decode failure.
    Wire(WireError),
    /// The daemon is not speaking this protocol (or refused the
    /// handshake).
    Handshake(String),
    /// The daemon sent a connection-level [`ServerMsg::Error`] frame.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Handshake(m) => write!(f, "handshake failed: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One connection to a `bw-server` daemon.
pub struct Client {
    stream: Stream,
    quota: u64,
    queue_capacity: u64,
    session: String,
    resumed: bool,
}

impl Client {
    /// Connects to `addr` (TCP `host:port` or `unix:/path`) and runs
    /// the version handshake, receiving a fresh session token.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] for transport failures,
    /// [`ClientError::Handshake`] when the peer is not a compatible
    /// daemon.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Client::connect_with(addr, None)
    }

    /// Connects presenting a saved session token. When the daemon
    /// still knows the session, [`Client::resumed`] is true and
    /// [`Client::resume`] will redeliver every unacknowledged cell.
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect_with(addr: &str, session: Option<&str>) -> Result<Client, ClientError> {
        let mut stream =
            Stream::connect(addr).map_err(|e| ClientError::Wire(WireError::Io(e.to_string())))?;
        send_msg(&mut stream, &hello_with(session))?;
        match recv_msg(&mut stream)? {
            Some(ServerMsg::HelloAck {
                protocol,
                quota,
                queue_capacity,
                session,
                resumed,
            }) => {
                if protocol != PROTOCOL_VERSION {
                    return Err(ClientError::Handshake(format!(
                        "daemon speaks protocol {protocol}, this client speaks {PROTOCOL_VERSION}"
                    )));
                }
                Ok(Client {
                    stream,
                    quota,
                    queue_capacity,
                    session,
                    resumed,
                })
            }
            Some(ServerMsg::Error { message }) => Err(ClientError::Handshake(message)),
            Some(other) => Err(ClientError::Handshake(format!(
                "expected hello-ack, got {other:?}"
            ))),
            None => Err(ClientError::Handshake(
                "daemon closed the connection during the handshake".to_string(),
            )),
        }
    }

    /// The daemon's per-connection in-flight quota, from the handshake.
    #[must_use]
    pub fn quota(&self) -> u64 {
        self.quota
    }

    /// The daemon's global queue bound, from the handshake.
    #[must_use]
    pub fn queue_capacity(&self) -> u64 {
        self.queue_capacity
    }

    /// This connection's session token — save it to reconnect and
    /// resume after a drop or a daemon restart.
    #[must_use]
    pub fn session(&self) -> &str {
        &self.session
    }

    /// Whether the handshake resumed an existing session (the daemon
    /// recognized the presented token).
    #[must_use]
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Submits one request; replies arrive via [`Client::next_msg`] /
    /// [`Client::collect_request`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] if the frame cannot be sent.
    pub fn submit(&mut self, req: u64, cells: &[CellSpec]) -> Result<(), ClientError> {
        self.submit_with(req, cells, false)
    }

    /// Submits one request, optionally asking for the daemon's
    /// priority lane (honored for small submits; see the daemon's
    /// `priority_max`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] if the frame cannot be sent.
    pub fn submit_with(
        &mut self,
        req: u64,
        cells: &[CellSpec],
        priority: bool,
    ) -> Result<(), ClientError> {
        send_msg(
            &mut self.stream,
            &ClientMsg::Submit {
                req,
                cells: cells.to_vec(),
                priority,
            },
        )
    }

    /// Acknowledges received cells of request `req` by index, moving
    /// the session's delivery watermark: acked cells are never
    /// redelivered by [`Client::resume`], and fully-acked requests
    /// are dropped from the daemon's journal.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] if the frame cannot be sent.
    pub fn ack(&mut self, req: u64, cells: &[u64]) -> Result<(), ClientError> {
        send_msg(
            &mut self.stream,
            &ClientMsg::Ack {
                req,
                cells: cells.to_vec(),
            },
        )
    }

    /// Asks the daemon to redeliver everything this session never
    /// acked. Returns the outstanding request ids; each then settles
    /// through the normal reply stream ([`Client::collect_request`]
    /// per request). Call before submitting new work on a resumed
    /// connection.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on an error frame, [`ClientError::Wire`]
    /// if the connection dies first.
    pub fn resume(&mut self) -> Result<Vec<u64>, ClientError> {
        send_msg(&mut self.stream, &ClientMsg::Resume)?;
        loop {
            match self.next_msg()? {
                Some(ServerMsg::Resumed { reqs }) => return Ok(reqs),
                Some(ServerMsg::Error { message }) => return Err(ClientError::Server(message)),
                Some(_) => {}
                None => {
                    return Err(ClientError::Wire(WireError::Closed(
                        "before the resume reply".to_string(),
                    )))
                }
            }
        }
    }

    /// Reads the next server frame; `Ok(None)` is a clean close.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] for transport or decode failures.
    pub fn next_msg(&mut self) -> Result<Option<ServerMsg>, ClientError> {
        recv_msg(&mut self.stream)
    }

    /// Drains replies for request `req` until its `done` frame,
    /// returning the per-cell replies sorted by cell index. Frames for
    /// other requests on this connection are discarded.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] if the daemon sends an error frame,
    /// [`ClientError::Wire`] if the connection dies first.
    pub fn collect_request(&mut self, req: u64) -> Result<Vec<CellReply>, ClientError> {
        let mut replies = Vec::new();
        loop {
            match self.next_msg()? {
                Some(ServerMsg::Cell(reply)) if reply.req == req => replies.push(reply),
                Some(ServerMsg::Done { req: done, .. }) if done == req => break,
                Some(ServerMsg::Error { message }) => return Err(ClientError::Server(message)),
                Some(_) => {}
                None => {
                    return Err(ClientError::Wire(WireError::Closed(
                        "before the request completed".to_string(),
                    )))
                }
            }
        }
        replies.sort_by_key(|r| r.cell);
        Ok(replies)
    }

    /// Submits `cells` as request `req` and waits for all replies —
    /// the common one-shot shape.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`] and [`Client::collect_request`].
    pub fn run_cells(
        &mut self,
        req: u64,
        cells: &[CellSpec],
    ) -> Result<Vec<CellReply>, ClientError> {
        self.submit(req, cells)?;
        self.collect_request(req)
    }

    /// [`Client::run_cells`] with capped exponential backoff on
    /// *retryable* refusals (quota / queue-full backpressure): only
    /// the refused cells are resubmitted, under derived request ids,
    /// and their final statuses are merged back under the original
    /// cell indices. Non-retryable refusals (bad request, quarantine)
    /// and failures are returned as-is.
    ///
    /// # Errors
    ///
    /// As [`Client::run_cells`]; an exhausted retry budget is not an
    /// error — the surviving refusals are in the replies and the
    /// attempt count in the report.
    pub fn run_cells_with_retry(
        &mut self,
        req: u64,
        cells: &[CellSpec],
        priority: bool,
        policy: &RetryPolicy,
    ) -> Result<(Vec<CellReply>, RetryReport), ClientError> {
        self.submit_with(req, cells, priority)?;
        let mut replies = self.collect_request(req)?;
        let mut report = RetryReport {
            attempts: 1,
            retried: 0,
        };
        for attempt in 1..policy.attempts.max(1) {
            // The cells still worth retrying, under their original
            // submit indices.
            let pending: Vec<u64> = replies
                .iter()
                .filter(|r| {
                    matches!(&r.status, CellStatus::Refused { reason, .. }
                        if reason.is_retryable())
                })
                .map(|r| r.cell)
                .collect();
            if pending.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(policy.delay_ms(attempt, req)));
            let specs: Vec<CellSpec> = pending
                .iter()
                .map(|&i| cells[usize::try_from(i).unwrap_or(usize::MAX)].clone())
                .collect();
            // A derived request id far from user-chosen ones, so the
            // retry's frames never collide with a concurrent request
            // on this connection.
            let sub_req = req ^ (u64::from(attempt) << 48) ^ 0x5261_7472_7900_0000;
            self.submit_with(sub_req, &specs, priority)?;
            for sub in self.collect_request(sub_req)? {
                let Some(&orig) = pending.get(usize::try_from(sub.cell).unwrap_or(usize::MAX))
                else {
                    continue;
                };
                if let Some(slot) = replies.iter_mut().find(|r| r.cell == orig) {
                    slot.status = sub.status;
                }
            }
            report.attempts = attempt + 1;
            report.retried += pending.len();
        }
        Ok((replies, report))
    }

    /// Asks the daemon for its counters: `(executed, queued,
    /// inflight)`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on an error frame, [`ClientError::Wire`]
    /// if the connection dies.
    pub fn stats(&mut self) -> Result<(u64, u64, u64), ClientError> {
        send_msg(&mut self.stream, &ClientMsg::Stats)?;
        loop {
            match self.next_msg()? {
                Some(ServerMsg::Stats {
                    executed,
                    queued,
                    inflight,
                }) => return Ok((executed, queued, inflight)),
                Some(ServerMsg::Error { message }) => return Err(ClientError::Server(message)),
                Some(_) => {}
                None => {
                    return Err(ClientError::Wire(WireError::Closed(
                        "before the stats reply".to_string(),
                    )))
                }
            }
        }
    }

    /// Polite goodbye; consumes the client and closes the connection.
    pub fn bye(mut self) {
        let _ = send_msg(&mut self.stream, &ClientMsg::Bye);
        self.stream.shutdown_both();
    }
}

/// Encodes and writes one client frame, with the `bw-client` fault
/// sites for connection chaos (misbehaving-client tests).
fn send_msg(stream: &mut Stream, msg: &ClientMsg) -> Result<(), ClientError> {
    let frame = encode_frame(&msg.to_value())?;
    #[cfg(feature = "fault-inject")]
    {
        const SITE: &str = "bw-client";
        if bw_fault::injected_conn_drop(SITE) {
            stream.shutdown_both();
            return Err(ClientError::Wire(WireError::Closed(
                "injected client-side connection drop".to_string(),
            )));
        }
        if bw_fault::injected_frame_truncation(SITE) {
            let _ = stream.write_all(&frame[..frame.len() / 2]);
            let _ = stream.flush();
            stream.shutdown_both();
            return Err(ClientError::Wire(WireError::Closed(
                "injected client-side frame truncation".to_string(),
            )));
        }
        if let Some(delay) = bw_fault::injected_slow_write(SITE) {
            let half = frame.len() / 2;
            write_plain(stream, &frame[..half])?;
            std::thread::sleep(delay);
            write_plain(stream, &frame[half..])?;
            return Ok(());
        }
    }
    write_plain(stream, &frame)
}

fn write_plain(stream: &mut Stream, bytes: &[u8]) -> Result<(), ClientError> {
    stream
        .write_all(bytes)
        .and_then(|()| stream.flush())
        .map_err(|e| ClientError::Wire(WireError::Io(e.to_string())))
}

/// Reads and decodes one server frame.
fn recv_msg(stream: &mut Stream) -> Result<Option<ServerMsg>, ClientError> {
    match read_frame(stream)? {
        Some(v) => Ok(Some(ServerMsg::from_value(&v)?)),
        None => Ok(None),
    }
}

/// Backoff schedule for [`Client::run_cells_with_retry`]: capped
/// exponential delay with *deterministic* jitter (hashed from the
/// request id and attempt number, not sampled from a clock or RNG —
/// two runs of the same sweep back off identically, but distinct
/// requests desynchronize instead of stampeding the daemon in step).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub attempts: u32,
    /// Delay before the first retry, in milliseconds; doubles per
    /// attempt.
    pub base_ms: u64,
    /// Ceiling on any single delay, in milliseconds.
    pub max_ms: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, 50 ms base, 2 s cap.
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_ms: 50,
            max_ms: 2_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base_ms: 0,
            max_ms: 0,
        }
    }

    /// The delay before retry `attempt` (1-based), in milliseconds:
    /// half the capped exponential step plus deterministic jitter over
    /// the other half.
    #[must_use]
    pub fn delay_ms(&self, attempt: u32, salt: u64) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1_u64 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.max_ms);
        if capped == 0 {
            return 0;
        }
        let half = capped / 2;
        let mut seed = [0_u8; 12];
        seed[..8].copy_from_slice(&salt.to_be_bytes());
        seed[8..].copy_from_slice(&attempt.to_be_bytes());
        half + crate::journal::fnv1a(&seed) % (capped - half + 1)
    }
}

/// What [`Client::run_cells_with_retry`] did beyond the first attempt.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryReport {
    /// Attempts made (1 = everything settled first try).
    pub attempts: u32,
    /// Cell resubmissions across all retries.
    pub retried: usize,
}

impl RetryReport {
    /// `true` when at least one retry happened — worth surfacing in a
    /// failure summary.
    #[must_use]
    pub fn retried_any(&self) -> bool {
        self.attempts > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let policy = RetryPolicy::default();
        for attempt in 1..6 {
            let a = policy.delay_ms(attempt, 42);
            let b = policy.delay_ms(attempt, 42);
            assert_eq!(a, b, "same salt and attempt, same delay");
            assert!(a <= policy.max_ms, "delay respects the cap");
        }
        // The floor (half the exponential step) grows until the cap.
        assert!(policy.delay_ms(3, 7) >= 100);
        assert!(policy.delay_ms(1, 1) >= 25);
        // Distinct salts desynchronize.
        let spread: std::collections::BTreeSet<u64> =
            (0..16).map(|salt| policy.delay_ms(2, salt)).collect();
        assert!(spread.len() > 1, "jitter must actually vary by salt");
    }

    #[test]
    fn none_policy_never_sleeps() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.attempts, 1);
        assert_eq!(policy.delay_ms(1, 9), 0);
    }
}
