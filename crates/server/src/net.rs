//! Minimal blocking transport: one listener/stream pair that speaks
//! both TCP (`host:port`) and Unix domain sockets (`unix:/path`).
//!
//! Crate-private plumbing shared by the daemon and the client; all
//! protocol logic stays in [`crate::protocol`].

use std::io::{Read, Result as IoResult, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// Address prefix selecting a Unix domain socket.
const UNIX_PREFIX: &str = "unix:";

/// A bound listening socket.
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl Listener {
    /// Binds `addr`: `unix:/path/to.sock` or a TCP `host:port`
    /// (`127.0.0.1:0` picks a free port).
    pub(crate) fn bind(addr: &str) -> IoResult<Listener> {
        if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            {
                // Rebinding a daemon socket path is routine; a stale
                // socket file from a dead daemon must not wedge it.
                let _ = std::fs::remove_file(path);
                return UnixListener::bind(path).map(|l| Listener::Unix(l, addr.to_string()));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
        }
        TcpListener::bind(addr).map(Listener::Tcp)
    }

    /// The address the listener actually bound (resolves `:0` ports).
    pub(crate) fn local_addr(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "tcp:?".to_string()),
            #[cfg(unix)]
            Listener::Unix(_, addr) => addr.clone(),
        }
    }

    /// Accepts one connection, returning the stream and a peer label
    /// for logs and fault-injection site ids.
    pub(crate) fn accept(&self) -> IoResult<(Stream, String)> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, peer)| {
                let label = peer.to_string();
                (Stream::Tcp(s), label)
            }),
            #[cfg(unix)]
            Listener::Unix(l, addr) => l
                .accept()
                .map(|(s, _)| (Stream::Unix(s), format!("{addr} peer"))),
        }
    }
}

/// One connected socket.
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connects to `addr` (same syntax as [`Listener::bind`]).
    pub(crate) fn connect(addr: &str) -> IoResult<Stream> {
        if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            {
                return UnixStream::connect(path).map(Stream::Unix);
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
        }
        TcpStream::connect(addr).map(Stream::Tcp)
    }

    /// Clones the socket handle (independent read/write halves).
    pub(crate) fn try_clone(&self) -> IoResult<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Applies a read timeout (the daemon's slow-loris defense).
    pub(crate) fn set_read_timeout(&self, d: Option<Duration>) -> IoResult<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }

    /// Best-effort full shutdown, unblocking any peer reads.
    pub(crate) fn shutdown_both(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> IoResult<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> IoResult<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> IoResult<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}
