//! `bw-server` — the simulation daemon.
//!
//! Serves supervised, cached, single-flight simulation runs to
//! `bw-client` / `--server`-mode figure binaries. See
//! `docs/EXPERIMENTS.md` for the operator guide.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use bw_core::{CacheBudget, RunCache, Supervision};
use bw_server::{Server, ServerConfig};

const USAGE: &str = "\
bw-server — branchwatt simulation daemon

USAGE:
  bw-server [OPTIONS]

OPTIONS:
  --listen ADDR        Bind address: host:port or unix:/path
                       (default 127.0.0.1:7381)
  --cache DIR          Run-cache directory (default results/cache)
  --no-cache           Disable the shared run cache (and quarantine)
  --workers N          Simulation worker threads (default 2)
  --quota N            Per-connection in-flight cell quota (default 256)
  --queue N            Global pending-run queue bound (default 1024)
  --run-timeout SECS   Per-attempt watchdog for each run (default none)
  --read-timeout SECS  Per-connection read timeout, 0 = none (default 30)
  --cache-max-bytes N  Evict LRU cache entries past N total bytes
                       (default unbounded)
  --cache-max-entries N
                       Evict LRU cache entries past N files
                       (default unbounded)
  --quantum N          Cells served per session per fair-scheduling
                       round (default 8)
  --priority-max N     Largest submit the priority lane accepts
                       (default 64)
  --help               Show this help

Durability: with a cache directory the daemon keeps a checksummed
flight journal beside it; a restarted daemon replays the journal and
finishes interrupted sweeps, and clients resume with their session
token.

Chaos drills: set BW_FAULT (e.g. `dropconnx1@bw-server`, `killx1@bw-server
worker`, `evictx1@bw-server admit`) and build with --features
fault-inject to rehearse dropped connections, truncated frames, slow
writes, mid-sweep crashes, and eviction races.
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("bw-server: {msg}");
    eprintln!("run with --help for usage");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut listen = "127.0.0.1:7381".to_string();
    let mut cfg = ServerConfig {
        cache_dir: Some(RunCache::default_dir()),
        ..ServerConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--listen" => match value("--listen") {
                Ok(v) => listen = v,
                Err(e) => return fail(&e),
            },
            "--cache" => match value("--cache") {
                Ok(v) => cfg.cache_dir = Some(PathBuf::from(v)),
                Err(e) => return fail(&e),
            },
            "--no-cache" => cfg.cache_dir = None,
            "--workers" => match value("--workers").and_then(parse_num) {
                Ok(n) => cfg.workers = n as usize,
                Err(e) => return fail(&format!("--workers: {e}")),
            },
            "--quota" => match value("--quota").and_then(parse_num) {
                Ok(n) => cfg.quota = n,
                Err(e) => return fail(&format!("--quota: {e}")),
            },
            "--queue" => match value("--queue").and_then(parse_num) {
                Ok(n) => cfg.queue_capacity = n as usize,
                Err(e) => return fail(&format!("--queue: {e}")),
            },
            "--run-timeout" => match value("--run-timeout").and_then(parse_num) {
                Ok(n) => {
                    cfg.supervision = Supervision {
                        run_timeout: Some(Duration::from_secs(n)),
                        ..cfg.supervision
                    };
                }
                Err(e) => return fail(&format!("--run-timeout: {e}")),
            },
            "--read-timeout" => match value("--read-timeout").and_then(parse_num) {
                Ok(0) => cfg.read_timeout = None,
                Ok(n) => cfg.read_timeout = Some(Duration::from_secs(n)),
                Err(e) => return fail(&format!("--read-timeout: {e}")),
            },
            "--cache-max-bytes" => match value("--cache-max-bytes").and_then(parse_num) {
                Ok(n) => {
                    let budget = cfg.cache_budget.get_or_insert_with(CacheBudget::default);
                    budget.max_bytes = Some(n);
                }
                Err(e) => return fail(&format!("--cache-max-bytes: {e}")),
            },
            "--cache-max-entries" => match value("--cache-max-entries").and_then(parse_num) {
                Ok(n) => {
                    let budget = cfg.cache_budget.get_or_insert_with(CacheBudget::default);
                    budget.max_entries = Some(n as usize);
                }
                Err(e) => return fail(&format!("--cache-max-entries: {e}")),
            },
            "--quantum" => match value("--quantum").and_then(parse_num) {
                Ok(0) => return fail("--quantum must be at least 1"),
                Ok(n) => cfg.quantum = n,
                Err(e) => return fail(&format!("--quantum: {e}")),
            },
            "--priority-max" => match value("--priority-max").and_then(parse_num) {
                Ok(n) => cfg.priority_max = n,
                Err(e) => return fail(&format!("--priority-max: {e}")),
            },
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }
    if cfg.workers == 0 {
        return fail("--workers must be at least 1");
    }

    #[cfg(feature = "fault-inject")]
    match bw_fault::FaultPlan::from_env() {
        Ok(Some(plan)) => {
            eprintln!("bw-server: fault plan armed from BW_FAULT");
            bw_fault::arm(plan);
        }
        Ok(None) => {}
        Err(e) => return fail(&format!("BW_FAULT: {e}")),
    }

    let server = match Server::launch(&listen, cfg.clone()) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot bind {listen}: {e}")),
    };
    println!(
        "bw-server listening on {} ({} workers, quota {}, queue {}, cache {})",
        server.addr(),
        cfg.workers,
        cfg.quota,
        cfg.queue_capacity,
        cfg.cache_dir
            .as_ref()
            .map_or("disabled".to_string(), |d| d.display().to_string()),
    );
    // Serve until killed; all work happens on the daemon's threads.
    loop {
        std::thread::park();
    }
}

fn parse_num(v: String) -> Result<u64, String> {
    v.parse::<u64>().map_err(|e| format!("`{v}`: {e}"))
}
