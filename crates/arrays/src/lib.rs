//! SRAM array power and timing models for the `branchwatt` simulator.
//!
//! All the tables a processor uses to store information — caches, branch
//! predictor PHTs/BHTs, BTBs — share one structure: a memory core of
//! SRAM cells accessed through row and column decoders (Figure 1 of the
//! paper). This crate models that structure from scratch:
//!
//! * [`TechParams`] — process/technology constants for the paper's
//!   0.35 µm-class process at 2.0 V and 1200 MHz.
//! * [`ArraySpec`] / [`ArrayOrg`] — logical and physical organization,
//!   including the *squarification* search (Section 2.5) that picks the
//!   physical aspect ratio minimizing the energy-delay product.
//! * [`ArrayModel`] — per-access energy broken into row decoder, column
//!   decoder, wordlines, bitlines, sense amps, output mux and tag
//!   compare ([`EnergyBreakdown`]), under two model kinds
//!   ([`ModelKind`]): the original Wattch 1.02 model (no column
//!   decoders) and the paper's extended model.
//! * [`timing`] — a Cacti-style RC access-time estimate used for the
//!   squarification and banking cycle-time results (Figures 3 and 11).
//! * [`banking`] — bank counts (Table 3) and the banked-array model
//!   (Section 4.1): only one bank is active per access.
//!
//! # Examples
//!
//! ```
//! use bw_arrays::{ArrayModel, ArraySpec, ModelKind, TechParams};
//!
//! // A 16K-entry PHT of 2-bit counters, as in the Sun UltraSPARC-III.
//! let spec = ArraySpec::untagged(16 * 1024, 2);
//! let tech = TechParams::default();
//! let model = ArrayModel::new(spec, &tech, ModelKind::WithColumnDecoders);
//!
//! let energy = model.energy_per_access();
//! assert!(energy.total() > 0.0);
//! // The column-decoder term exists only in the extended model.
//! let old = ArrayModel::new(spec, &tech, ModelKind::Wattch102);
//! assert_eq!(old.energy_per_access().column_decoder, 0.0);
//! assert!(energy.total() > old.energy_per_access().total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banking;
mod energy;
mod spec;
mod tech;
pub mod timing;

pub use banking::{bank_count_for_bits, BankedArrayModel};
pub use energy::{ArrayModel, EnergyBreakdown, ModelKind};
pub use spec::{ArrayOrg, ArraySpec, SquarifyGoal};
pub use tech::TechParams;
