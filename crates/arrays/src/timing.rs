//! Cacti-style RC access-time model.
//!
//! The paper uses a slightly modified Cacti to estimate access and cycle
//! times for squarification (Section 2.5, Figure 3) and banking
//! (Section 4.1, Figure 11). Because achievable cycle times are
//! extremely implementation-dependent, the paper only reports
//! *normalized* cycle times; this module follows the same spirit with a
//! simple Elmore-delay RC model per pipeline stage of the array access:
//! row decode → wordline → bitline → sense → output mux.
//!
//! # Examples
//!
//! ```
//! use bw_arrays::{ArraySpec, TechParams};
//! use bw_arrays::timing::access_time_s;
//!
//! let tech = TechParams::default();
//! let small = ArraySpec::untagged(256, 2).candidate_orgs();
//! let t = access_time_s(&small[0], &tech);
//! assert!(t > 0.0 && t < 1e-8);
//! ```

use crate::spec::{ceil_log2, ArrayOrg};
use crate::tech::TechParams;

/// Estimated access time of one physical organization, in seconds.
///
/// The model sums:
/// * decoder delay — logarithmic in the row count (predecode tree) plus
///   a small per-stage constant,
/// * wordline delay — distributed RC (Elmore: `R·C/2`) over the row,
/// * bitline delay — distributed RC over the column,
/// * fixed sense-amplifier and output-mux delays, the latter growing
///   slowly with the column mux degree.
#[must_use]
pub fn access_time_s(org: &ArrayOrg, tech: &TechParams) -> f64 {
    let rows = org.rows as f64;
    let cols = org.cols as f64;

    let dec_stages = 1.0 + f64::from(ceil_log2(org.rows.max(2))) * 0.35;
    let t_dec = tech.t_decoder_stage * dec_stages;

    let r_wl = tech.r_wordline_per_cell * cols;
    let c_wl = tech.c_wordline_per_cell * cols;
    let t_wl = 0.5 * r_wl * c_wl;

    let r_bl = tech.r_bitline_per_cell * rows;
    let c_bl = tech.c_bitline_per_cell * rows;
    let t_bl = 0.5 * r_bl * c_bl;

    let mux_stages = 1.0 + f64::from(ceil_log2(org.mux_degree.max(2))) * 0.15;
    let t_out = tech.t_output * mux_stages;

    t_dec + t_wl + t_bl + tech.t_senseamp + t_out
}

/// Normalizes a slice of times by its maximum, as the paper's figures
/// do ("cycle times are normalized with respect to the maximum value").
///
/// Returns an empty vector for empty input; if all values are zero the
/// values are returned unchanged.
///
/// # Examples
///
/// ```
/// let n = bw_arrays::timing::normalize(&[1.0, 2.0, 4.0]);
/// assert_eq!(n, vec![0.25, 0.5, 1.0]);
/// ```
#[must_use]
pub fn normalize(times: &[f64]) -> Vec<f64> {
    let max = times.iter().copied().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return times.to_vec();
    }
    times.iter().map(|t| t / max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ArraySpec;

    fn best_org(entries: u64) -> ArrayOrg {
        use crate::{ArrayModel, ModelKind, SquarifyGoal};
        let tech = TechParams::default();
        ArrayModel::squarify(
            ArraySpec::untagged(entries, 2),
            &tech,
            ModelKind::WithColumnDecoders,
            SquarifyGoal::MinEnergyDelay,
        )
    }

    #[test]
    fn access_time_grows_with_array_size() {
        let tech = TechParams::default();
        let t_small = access_time_s(&best_org(256), &tech);
        let t_big = access_time_s(&best_org(64 * 1024), &tech);
        assert!(t_big > t_small, "{t_big} !> {t_small}");
    }

    #[test]
    fn skinny_orgs_are_slower_than_balanced() {
        let tech = TechParams::default();
        // 64K entries, 2 bits: mux 1 -> 65536 x 2 (long bitlines).
        let skinny = ArrayOrg {
            rows: 65536,
            cols: 2,
            mux_degree: 1,
        };
        let balanced = ArrayOrg {
            rows: 256,
            cols: 512,
            mux_degree: 256,
        };
        assert!(access_time_s(&skinny, &tech) > access_time_s(&balanced, &tech));
    }

    #[test]
    fn normalization_max_is_one() {
        let times = vec![0.5e-9, 1.0e-9, 0.25e-9];
        let n = normalize(&times);
        assert!((n.iter().copied().fold(0.0_f64, f64::max) - 1.0).abs() < 1e-12);
        assert!((n[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_handles_degenerate_inputs() {
        assert!(normalize(&[]).is_empty());
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn plausible_sub_nanosecond_magnitudes() {
        let tech = TechParams::default();
        let t = access_time_s(&best_org(16 * 1024), &tech);
        assert!(
            t > 0.1e-9 && t < 3e-9,
            "16K-entry PHT access {t} out of plausible range"
        );
    }
}
