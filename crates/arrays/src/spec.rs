//! Logical array specifications and physical organizations
//! (squarification).

/// Logical description of an SRAM array structure.
///
/// Covers every table the paper models with the same machinery: pattern
/// history tables (untagged, 2-bit entries), branch history tables
/// (untagged, history-width entries), BTBs (tagged, set-associative) and
/// caches.
///
/// `entries` counts logical entries across all ways; a set-associative
/// array has `entries / assoc` sets, and an access reads all `assoc`
/// ways of one set in parallel (data plus tags).
///
/// # Examples
///
/// ```
/// use bw_arrays::ArraySpec;
///
/// // 16K-entry PHT of 2-bit counters: 32 Kbits of state.
/// let pht = ArraySpec::untagged(16 * 1024, 2);
/// assert_eq!(pht.total_bits(), 32 * 1024);
/// assert_eq!(pht.sets(), 16 * 1024);
///
/// // The paper's BTB: 2048 entries, 2-way, ~30-bit targets, 21-bit tags.
/// let btb = ArraySpec::tagged(2048, 30, 2, 21);
/// assert_eq!(btb.sets(), 1024);
/// assert_eq!(btb.bits_read_per_access(), 2 * (30 + 21));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArraySpec {
    /// Number of logical entries (across all ways).
    pub entries: u64,
    /// Data bits per entry.
    pub bits_per_entry: u32,
    /// Associativity: ways read in parallel (1 for direct/untagged).
    pub assoc: u32,
    /// Tag bits per entry (0 for untagged structures such as PHTs).
    pub tag_bits: u32,
}

impl ArraySpec {
    /// An untagged, direct-indexed array (PHT, BHT, RAS, PPD).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `bits_per_entry` is zero.
    #[must_use]
    pub fn untagged(entries: u64, bits_per_entry: u32) -> Self {
        assert!(entries > 0, "array must have at least one entry");
        assert!(bits_per_entry > 0, "entries must be at least one bit wide");
        ArraySpec {
            entries,
            bits_per_entry,
            assoc: 1,
            tag_bits: 0,
        }
    }

    /// A tagged, set-associative array (BTB, cache).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero, not divisible by `assoc`, or if
    /// `assoc`/`bits_per_entry` are zero.
    #[must_use]
    pub fn tagged(entries: u64, bits_per_entry: u32, assoc: u32, tag_bits: u32) -> Self {
        assert!(entries > 0 && bits_per_entry > 0 && assoc > 0);
        assert!(
            entries.is_multiple_of(u64::from(assoc)),
            "entries ({entries}) must divide evenly into {assoc} ways"
        );
        ArraySpec {
            entries,
            bits_per_entry,
            assoc,
            tag_bits,
        }
    }

    /// Number of sets (rows of the logical organization).
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.entries / u64::from(self.assoc)
    }

    /// Total storage bits (data + tags).
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.entries * u64::from(self.bits_per_entry + self.tag_bits)
    }

    /// Data bits only.
    #[must_use]
    pub fn data_bits(&self) -> u64 {
        self.entries * u64::from(self.bits_per_entry)
    }

    /// Bits read by one access: all ways of one set, data plus tags.
    #[must_use]
    pub fn bits_read_per_access(&self) -> u64 {
        u64::from(self.assoc) * u64::from(self.bits_per_entry + self.tag_bits)
    }

    /// Enumerates the candidate physical organizations: each folds
    /// `2^k` sets into one physical row (degree-`2^k` column
    /// multiplexing).
    #[must_use]
    pub fn candidate_orgs(&self) -> Vec<ArrayOrg> {
        let sets = self.sets();
        let mut out = Vec::new();
        let mut mux = 1u64;
        while mux <= sets {
            if sets.is_multiple_of(mux) {
                out.push(ArrayOrg {
                    rows: sets / mux,
                    cols: mux * self.bits_read_per_access(),
                    mux_degree: mux,
                });
            }
            mux *= 2;
        }
        out
    }
}

/// A physical organization of an [`ArraySpec`]: the result of
/// squarification.
///
/// `mux_degree` sets share one physical row; the column decoder selects
/// among them. `rows * cols == total_bits` always holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArrayOrg {
    /// Physical wordlines.
    pub rows: u64,
    /// Physical bitline pairs (columns).
    pub cols: u64,
    /// Sets folded per row (power of two).
    pub mux_degree: u64,
}

impl ArrayOrg {
    /// Squareness metric (dimensionless): |log2(rows) − log2(cols)| —
    /// zero for a perfectly square array.
    #[must_use]
    pub fn aspect_imbalance(&self) -> f64 {
        ((self.rows as f64).log2() - (self.cols as f64).log2()).abs()
    }
}

/// The objective used to pick a physical organization.
///
/// Wattch 1.02 automatically picked the organization that is *as square
/// as possible*; Section 2.5 of the paper instead generates all
/// candidates and keeps the one with the minimum energy-delay product,
/// which noticeably improves access time for the 8K- and 32K-entry
/// predictors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SquarifyGoal {
    /// Minimize |rows − cols| (Wattch 1.02 behaviour, the "old" curve).
    AsSquareAsPossible,
    /// Minimize the energy × access-time product (the paper's "new"
    /// squarification).
    MinEnergyDelay,
}

/// `ceil(log2(x))` for `x ≥ 1`, as `f64`-free integer math.
#[must_use]
pub(crate) fn ceil_log2(x: u64) -> u32 {
    debug_assert!(x >= 1);
    64 - x.saturating_sub(1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untagged_pht_geometry() {
        let pht = ArraySpec::untagged(4096, 2);
        assert_eq!(pht.sets(), 4096);
        assert_eq!(pht.total_bits(), 8192);
        assert_eq!(pht.bits_read_per_access(), 2);
    }

    #[test]
    fn tagged_btb_geometry() {
        let btb = ArraySpec::tagged(2048, 30, 2, 21);
        assert_eq!(btb.sets(), 1024);
        assert_eq!(btb.total_bits(), 2048 * 51);
        assert_eq!(btb.bits_read_per_access(), 102);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn tagged_rejects_non_divisible_ways() {
        let _ = ArraySpec::tagged(10, 8, 4, 4);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn untagged_rejects_zero_entries() {
        let _ = ArraySpec::untagged(0, 2);
    }

    #[test]
    fn candidates_preserve_total_bits() {
        let spec = ArraySpec::untagged(16 * 1024, 2);
        let orgs = spec.candidate_orgs();
        assert!(!orgs.is_empty());
        for o in &orgs {
            assert_eq!(o.rows * o.cols, spec.total_bits());
            assert!(o.mux_degree.is_power_of_two());
        }
        // Degrees are distinct and include the unmuxed organization.
        assert!(orgs.iter().any(|o| o.mux_degree == 1));
    }

    #[test]
    fn candidates_cover_full_mux_range() {
        let spec = ArraySpec::untagged(256, 2);
        let orgs = spec.candidate_orgs();
        // mux 1..=256 in powers of two -> 9 organizations.
        assert_eq!(orgs.len(), 9);
        assert_eq!(orgs.last().unwrap().rows, 1);
    }

    #[test]
    fn aspect_imbalance_zero_when_square() {
        let o = ArrayOrg {
            rows: 128,
            cols: 128,
            mux_degree: 64,
        };
        assert!(o.aspect_imbalance() < 1e-12);
        let skinny = ArrayOrg {
            rows: 4096,
            cols: 2,
            mux_degree: 1,
        };
        assert!(skinny.aspect_imbalance() > 8.0);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }
}
