//! Banked array model (Section 4.1).
//!
//! Slower wires and faster clocks force multi-cycle access to large
//! on-chip structures; the natural answer is banking. Only one bank is
//! active per access, so banking saves both power (shorter bitlines and
//! fewer of them precharged) and access time. Banking costs a small
//! overhead in bank-select decode and output multiplexing, which is why
//! a complete column-decoder/mux model matters (Section 2.4).

use crate::energy::{ArrayModel, EnergyBreakdown, ModelKind};
use crate::spec::{ceil_log2, ArraySpec};
use crate::tech::TechParams;

/// Number of banks the paper assigns per predictor size (Table 3).
///
/// | PHT capacity | banks |
/// |---|---|
/// | 128 bits – 2 Kbits | 1 |
/// | 4 Kbits, 8 Kbits | 2 |
/// | 16, 32, 64 Kbits | 4 |
///
/// # Examples
///
/// ```
/// use bw_arrays::bank_count_for_bits;
///
/// assert_eq!(bank_count_for_bits(128), 1);
/// assert_eq!(bank_count_for_bits(4 * 1024), 2);
/// assert_eq!(bank_count_for_bits(8 * 1024), 2);
/// assert_eq!(bank_count_for_bits(64 * 1024), 4);
/// ```
#[must_use]
pub fn bank_count_for_bits(total_bits: u64) -> u32 {
    if total_bits < 4 * 1024 {
        1
    } else if total_bits < 16 * 1024 {
        2
    } else {
        4
    }
}

/// An array split into equal banks, one active per access.
///
/// Construction banks by entry count: an `N`-bank array of `E` entries
/// is modelled as one `E/N`-entry bank plus bank-select overhead (extra
/// decode and an `N`-way output mux), folded into the
/// [`EnergyBreakdown::column_decoder`] term.
///
/// # Examples
///
/// ```
/// use bw_arrays::{ArraySpec, BankedArrayModel, ArrayModel, ModelKind, TechParams};
///
/// let tech = TechParams::default();
/// let spec = ArraySpec::untagged(32 * 1024, 2); // 64 Kbits -> 4 banks
/// let banked = BankedArrayModel::new(spec, &tech, ModelKind::WithColumnDecoders);
/// let flat = ArrayModel::new(spec, &tech, ModelKind::WithColumnDecoders);
/// assert_eq!(banked.banks(), 4);
/// assert!(banked.energy_per_access().total() < flat.energy_per_access().total());
/// assert!(banked.access_time_s() < flat.access_time_s());
/// ```
#[derive(Clone, Debug)]
pub struct BankedArrayModel {
    spec: ArraySpec,
    banks: u32,
    bank_model: ArrayModel,
    overhead_energy: f64,
    route_time: f64,
}

impl BankedArrayModel {
    /// Banks `spec` according to Table 3 ([`bank_count_for_bits`] of its
    /// total capacity).
    #[must_use]
    pub fn new(spec: ArraySpec, tech: &TechParams, kind: ModelKind) -> Self {
        let banks = bank_count_for_bits(spec.total_bits());
        Self::with_banks(spec, banks, tech, kind)
    }

    /// Banks `spec` into an explicit number of banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero, not a power of two, or does not divide
    /// the entry count evenly.
    #[must_use]
    pub fn with_banks(spec: ArraySpec, banks: u32, tech: &TechParams, kind: ModelKind) -> Self {
        assert!(
            banks >= 1 && banks.is_power_of_two(),
            "banks must be a power of two"
        );
        assert!(
            spec.entries.is_multiple_of(u64::from(banks)),
            "entries ({}) must divide into {banks} banks",
            spec.entries
        );
        let bank_spec = ArraySpec {
            entries: spec.entries / u64::from(banks),
            ..spec
        };
        let bank_model = ArrayModel::new(bank_spec, tech, kind);
        let (overhead_energy, route_time) = if banks > 1 {
            // Bank-select predecode plus an N-way output mux on the
            // delivered bits.
            let sel_bits = f64::from(ceil_log2(u64::from(banks)));
            let c = tech.c_decoder_input * (f64::from(banks) + 2.0 * sel_bits)
                + spec.bits_read_per_access() as f64 * f64::from(banks) * tech.c_pass_gate;
            let t = tech.t_output * 0.3 * sel_bits;
            (tech.switch_energy(c), t)
        } else {
            (0.0, 0.0)
        };
        BankedArrayModel {
            spec,
            banks,
            bank_model,
            overhead_energy,
            route_time,
        }
    }

    /// The full (pre-banking) specification.
    #[must_use]
    pub fn spec(&self) -> ArraySpec {
        self.spec
    }

    /// The number of banks.
    #[must_use]
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// The model of one bank.
    #[must_use]
    pub fn bank_model(&self) -> &ArrayModel {
        &self.bank_model
    }

    /// Energy of one access: one active bank plus bank-select/mux
    /// overhead (reported under `column_decoder`).
    #[must_use]
    pub fn energy_per_access(&self) -> EnergyBreakdown {
        let mut e = self.bank_model.energy_per_access();
        e.column_decoder += self.overhead_energy;
        e
    }

    /// Energy of one write/update access in joules (one bank +
    /// overhead).
    #[must_use]
    pub fn energy_per_write(&self) -> f64 {
        self.bank_model.energy_per_write() + self.overhead_energy
    }

    /// Access time: one bank plus inter-bank routing.
    #[must_use]
    pub fn access_time_s(&self) -> f64 {
        self.bank_model.access_time_s() + self.route_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn table3_bank_counts() {
        // The exact rows of Table 3.
        assert_eq!(bank_count_for_bits(128), 1);
        assert_eq!(bank_count_for_bits(4 * 1024), 2);
        assert_eq!(bank_count_for_bits(8 * 1024), 2);
        assert_eq!(bank_count_for_bits(16 * 1024), 4);
        assert_eq!(bank_count_for_bits(32 * 1024), 4);
        assert_eq!(bank_count_for_bits(64 * 1024), 4);
        // Interpolated sizes.
        assert_eq!(bank_count_for_bits(1024), 1);
        assert_eq!(bank_count_for_bits(2 * 1024), 1);
        assert_eq!(bank_count_for_bits(128 * 1024), 4);
    }

    #[test]
    fn banking_saves_energy_on_large_arrays() {
        let t = tech();
        for entries in [8 * 1024u64, 16 * 1024, 32 * 1024] {
            let spec = ArraySpec::untagged(entries, 2);
            let banked = BankedArrayModel::new(spec, &t, ModelKind::WithColumnDecoders);
            let flat = ArrayModel::new(spec, &t, ModelKind::WithColumnDecoders);
            assert!(
                banked.energy_per_access().total() < flat.energy_per_access().total(),
                "banking must save energy at {entries} entries"
            );
        }
    }

    #[test]
    fn banking_reduces_access_time_on_large_arrays() {
        let t = tech();
        let spec = ArraySpec::untagged(32 * 1024, 2);
        let banked = BankedArrayModel::new(spec, &t, ModelKind::WithColumnDecoders);
        let flat = ArrayModel::new(spec, &t, ModelKind::WithColumnDecoders);
        assert!(banked.access_time_s() < flat.access_time_s());
    }

    #[test]
    fn single_bank_matches_flat_array() {
        let t = tech();
        let spec = ArraySpec::untagged(256, 2); // 512 bits -> 1 bank
        let banked = BankedArrayModel::new(spec, &t, ModelKind::WithColumnDecoders);
        let flat = ArrayModel::new(spec, &t, ModelKind::WithColumnDecoders);
        assert_eq!(banked.banks(), 1);
        assert!(
            (banked.energy_per_access().total() - flat.energy_per_access().total()).abs() < 1e-24
        );
        assert!((banked.access_time_s() - flat.access_time_s()).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_banks() {
        let _ = BankedArrayModel::with_banks(
            ArraySpec::untagged(1024, 2),
            3,
            &tech(),
            ModelKind::WithColumnDecoders,
        );
    }

    #[test]
    fn more_banks_more_overhead_but_cheaper_bank() {
        let t = tech();
        let spec = ArraySpec::untagged(32 * 1024, 2);
        let two = BankedArrayModel::with_banks(spec, 2, &t, ModelKind::WithColumnDecoders);
        let four = BankedArrayModel::with_banks(spec, 4, &t, ModelKind::WithColumnDecoders);
        assert!(
            four.bank_model().energy_per_access().total()
                < two.bank_model().energy_per_access().total()
        );
    }

    #[test]
    fn banked_writes_cost_less_than_flat_writes_when_banked() {
        let t = tech();
        let spec = ArraySpec::untagged(32 * 1024, 2);
        let banked = BankedArrayModel::new(spec, &t, ModelKind::WithColumnDecoders);
        let flat = ArrayModel::new(spec, &t, ModelKind::WithColumnDecoders);
        assert!(banked.energy_per_write() < flat.energy_per_write());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn banked_energy_never_negative(entries_log in 7u32..17, banks_log in 0u32..3) {
            let t = TechParams::default();
            let spec = ArraySpec::untagged(1u64 << entries_log, 2);
            let banks = 1u32 << banks_log;
            let m = BankedArrayModel::with_banks(spec, banks, &t, ModelKind::WithColumnDecoders);
            prop_assert!(m.energy_per_access().total() > 0.0);
            prop_assert!(m.access_time_s() > 0.0);
        }

        #[test]
        fn bank_count_is_monotone_in_size(a in 1u64..1_000_000, b in 1u64..1_000_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bank_count_for_bits(lo) <= bank_count_for_bits(hi));
        }
    }
}
