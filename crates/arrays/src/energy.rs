//! Per-access energy model for SRAM arrays.

use crate::spec::{ceil_log2, ArrayOrg, ArraySpec, SquarifyGoal};
use crate::tech::TechParams;
use crate::timing;

/// Which array power model to use.
///
/// Wattch 1.02 modelled the row decoder, wordlines, bitlines and sense
/// amplifiers but **not** the column decoder. Section 2.4 of the paper
/// adds the column decoder (plus mux drivers and, for the BTB,
/// comparators and tag drivers) for all array structures; Figure 2
/// compares the two. `WithColumnDecoders` is the paper's "new" model and
/// the default everywhere else in this reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ModelKind {
    /// The original Wattch 1.02 model: no column decoder term, physical
    /// organization picked to be as square as possible.
    Wattch102,
    /// The paper's extended model: column decoders modelled, physical
    /// organization picked to minimize energy-delay.
    WithColumnDecoders,
}

impl ModelKind {
    /// The squarification objective this model kind used in the paper.
    #[must_use]
    pub fn default_goal(self) -> SquarifyGoal {
        match self {
            ModelKind::Wattch102 => SquarifyGoal::AsSquareAsPossible,
            ModelKind::WithColumnDecoders => SquarifyGoal::MinEnergyDelay,
        }
    }
}

/// Energy of one array access, decomposed by structure (joules).
///
/// The decomposition matters for two of the paper's experiments:
///
/// * Figure 2 isolates the column-decoder term (zero under
///   [`ModelKind::Wattch102`]).
/// * PPD timing Scenario 2 (Section 4.2) stops a gated access *after*
///   the bitlines but *before* the column multiplexor, so only the
///   [`post_mux`](EnergyBreakdown::post_mux) portion is saved.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyBreakdown {
    /// Row predecoder + wordline-select NOR energy.
    pub row_decoder: f64,
    /// Column decoder and mux-driver energy (the paper's addition; also
    /// carries bank-select overhead in banked arrays).
    pub column_decoder: f64,
    /// Wordline switching energy (one row fires).
    pub wordline: f64,
    /// Bitline precharge/swing energy across all columns — the dominant
    /// term, and the one banking divides.
    pub bitline: f64,
    /// Sense-amplifier energy for the selected (post-mux) bits.
    pub senseamp: f64,
    /// Output/bus driver energy for the data bits delivered.
    pub output: f64,
    /// Tag comparator energy (set-associative structures only).
    pub tag_compare: f64,
}

impl EnergyBreakdown {
    /// Total access energy in joules.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.pre_mux() + self.post_mux()
    }

    /// Energy in joules spent before the column multiplexor: decoders,
    /// wordline, bitlines. A PPD Scenario-2 gated access still spends
    /// this.
    #[must_use]
    pub fn pre_mux(&self) -> f64 {
        self.row_decoder + self.column_decoder + self.wordline + self.bitline
    }

    /// Energy in joules spent at/after the column multiplexor: sense
    /// amps, output drivers, tag comparators. This is what PPD
    /// Scenario 2 saves.
    #[must_use]
    pub fn post_mux(&self) -> f64 {
        self.senseamp + self.output + self.tag_compare
    }

    /// Element-wise sum of two breakdowns.
    #[must_use]
    pub fn combine(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            row_decoder: self.row_decoder + other.row_decoder,
            column_decoder: self.column_decoder + other.column_decoder,
            wordline: self.wordline + other.wordline,
            bitline: self.bitline + other.bitline,
            senseamp: self.senseamp + other.senseamp,
            output: self.output + other.output,
            tag_compare: self.tag_compare + other.tag_compare,
        }
    }
}

/// A squarified SRAM array with per-access energy and access-time
/// estimates.
///
/// # Examples
///
/// ```
/// use bw_arrays::{ArrayModel, ArraySpec, ModelKind, TechParams};
///
/// let tech = TechParams::default();
/// let small = ArrayModel::new(ArraySpec::untagged(128, 2), &tech, ModelKind::WithColumnDecoders);
/// let large = ArrayModel::new(ArraySpec::untagged(16 * 1024, 2), &tech, ModelKind::WithColumnDecoders);
/// // Larger arrays cost more energy and take longer to access.
/// assert!(large.energy_per_access().total() > small.energy_per_access().total());
/// assert!(large.access_time_s() > small.access_time_s());
/// ```
#[derive(Clone, Debug)]
pub struct ArrayModel {
    spec: ArraySpec,
    org: ArrayOrg,
    kind: ModelKind,
    read: EnergyBreakdown,
    write_energy: f64,
    access_time: f64,
    freq_hz: f64,
}

impl ArrayModel {
    /// Builds the model, squarifying with the model kind's default goal
    /// (`Wattch102` → as-square-as-possible; `WithColumnDecoders` →
    /// minimum energy-delay, per Section 2.5).
    #[must_use]
    pub fn new(spec: ArraySpec, tech: &TechParams, kind: ModelKind) -> Self {
        Self::with_goal(spec, tech, kind, kind.default_goal())
    }

    /// Builds the model with an explicit squarification goal.
    #[must_use]
    pub fn with_goal(
        spec: ArraySpec,
        tech: &TechParams,
        kind: ModelKind,
        goal: SquarifyGoal,
    ) -> Self {
        let org = Self::squarify(spec, tech, kind, goal);
        Self::for_org(spec, org, tech, kind)
    }

    /// Builds the model for a fixed, caller-chosen physical
    /// organization (used by the squarification sweep itself and by the
    /// banking model).
    #[must_use]
    pub fn for_org(spec: ArraySpec, org: ArrayOrg, tech: &TechParams, kind: ModelKind) -> Self {
        let read = read_energy(&spec, &org, tech, kind);
        let write_energy = write_energy_total(&spec, &org, tech, kind);
        let access_time = timing::access_time_s(&org, tech);
        ArrayModel {
            spec,
            org,
            kind,
            read,
            write_energy,
            access_time,
            freq_hz: tech.freq_hz,
        }
    }

    /// Searches candidate organizations for the one meeting `goal`.
    ///
    /// Candidates are restricted to buildable aspect ratios (within
    /// 8:1 either way, when such organizations exist — Cacti applies
    /// analogous `Ndwl`/`Ndbl` constraints). For
    /// [`SquarifyGoal::MinEnergyDelay`], organizations within 20 % of
    /// the best energy-delay product tie-break toward the shortest
    /// access time, reflecting that the paper found "almost no
    /// difference in power among the different organizations" while
    /// access time varied significantly.
    #[must_use]
    pub fn squarify(
        spec: ArraySpec,
        tech: &TechParams,
        kind: ModelKind,
        goal: SquarifyGoal,
    ) -> ArrayOrg {
        let all = spec.candidate_orgs();
        debug_assert!(!all.is_empty());
        let buildable: Vec<ArrayOrg> = all
            .iter()
            .copied()
            .filter(|o| o.aspect_imbalance() <= 3.0)
            .collect();
        let candidates = if buildable.is_empty() { all } else { buildable };
        match goal {
            SquarifyGoal::AsSquareAsPossible => candidates
                .into_iter()
                .min_by(|a, b| {
                    a.aspect_imbalance()
                        .partial_cmp(&b.aspect_imbalance())
                        .expect("imbalance is finite")
                })
                .expect("at least one candidate"),
            SquarifyGoal::MinEnergyDelay => {
                let ed = |o: &ArrayOrg| {
                    read_energy(&spec, o, tech, kind).total() * timing::access_time_s(o, tech)
                };
                let best = candidates
                    .iter()
                    .map(ed)
                    .min_by(|a, b| a.partial_cmp(b).expect("finite"))
                    .expect("at least one candidate");
                candidates
                    .into_iter()
                    .filter(|o| ed(o) <= best * 1.20)
                    .min_by(|a, b| {
                        timing::access_time_s(a, tech)
                            .partial_cmp(&timing::access_time_s(b, tech))
                            .expect("finite")
                    })
                    .expect("at least one candidate")
            }
        }
    }

    /// The logical specification this model was built from.
    #[must_use]
    pub fn spec(&self) -> ArraySpec {
        self.spec
    }

    /// The chosen physical organization.
    #[must_use]
    pub fn org(&self) -> ArrayOrg {
        self.org
    }

    /// The power-model kind in force.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Energy of one read access, by component.
    #[must_use]
    pub fn energy_per_access(&self) -> EnergyBreakdown {
        self.read
    }

    /// Energy of one write/update access (joules).
    #[must_use]
    pub fn energy_per_write(&self) -> f64 {
        self.write_energy
    }

    /// Estimated access time in seconds (Cacti-style RC model).
    #[must_use]
    pub fn access_time_s(&self) -> f64 {
        self.access_time
    }

    /// Power if read every cycle at the model's clock (watts) — the
    /// "maximum power" in Wattch's cc3 clock-gating style.
    #[must_use]
    pub fn max_power_w(&self) -> f64 {
        self.read.total() * self.freq_hz
    }
}

fn read_energy(
    spec: &ArraySpec,
    org: &ArrayOrg,
    tech: &TechParams,
    kind: ModelKind,
) -> EnergyBreakdown {
    let rows = org.rows as f64;
    let cols = org.cols as f64;
    let bits_read = spec.bits_read_per_access() as f64;
    let data_bits_read = f64::from(spec.assoc) * f64::from(spec.bits_per_entry);

    // Row decoder: predecode NAND tree + one-of-N NOR row select. All
    // predecode lines load a slice of the NOR array.
    let addr_bits = f64::from(ceil_log2(org.rows.max(2)));
    let c_rowdec = tech.c_decoder_input * (0.125 * rows + 3.0 * addr_bits + 2.0);
    let row_decoder = tech.switch_energy(c_rowdec);

    // Column decoder (the paper's addition): decodes the mux-degree
    // select and drives two pass gates per selected column (each logical
    // column of a PHT is two bits wide; generally, the selected group).
    let column_decoder = if kind == ModelKind::WithColumnDecoders && org.mux_degree >= 1 {
        let sel_bits = f64::from(ceil_log2(org.mux_degree.max(2)));
        let c_coldec = tech.c_decoder_input * (org.mux_degree as f64 + 2.0 * sel_bits)
            + bits_read * 2.0 * tech.c_pass_gate;
        tech.switch_energy(c_coldec)
    } else {
        0.0
    };

    // One wordline fires, loaded by every cell in the row.
    let wordline = tech.switch_energy(cols * tech.c_wordline_per_cell);

    // Every bitline pair in the array precharges and partially swings.
    let c_bitlines = 2.0 * cols * rows * tech.c_bitline_per_cell;
    let bitline = tech.swing_energy(c_bitlines, tech.vdd * tech.bitline_swing);

    // Sense amplifiers sit on every column pair, before the column
    // multiplexor (Wattch's arrangement; this is why the PPD's
    // Scenario 2 can still save them). Output drivers fire only for
    // the selected data bits.
    let senseamp = cols * tech.switch_energy(tech.c_senseamp);
    let output = data_bits_read * tech.switch_energy(tech.c_output_driver);

    // Tag comparators: per way, per tag bit.
    let tag_compare = f64::from(spec.assoc)
        * f64::from(spec.tag_bits)
        * tech.switch_energy(tech.c_comparator_per_bit);

    EnergyBreakdown {
        row_decoder,
        column_decoder,
        wordline,
        bitline,
        senseamp,
        output,
        tag_compare,
    }
}

fn write_energy_total(spec: &ArraySpec, org: &ArrayOrg, tech: &TechParams, kind: ModelKind) -> f64 {
    // A write drives the selected group's bitlines rail-to-rail while
    // the rest of the array still precharges; no sensing or compare.
    let read = read_energy(spec, org, tech, kind);
    let written_bits = f64::from(spec.bits_per_entry);
    let rows = org.rows as f64;
    let c_written = 2.0 * written_bits * rows * tech.c_bitline_per_cell;
    let full_drive = tech.switch_energy(c_written);
    read.row_decoder + read.column_decoder + read.wordline + read.bitline + full_drive
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn energy_monotone_in_size() {
        let t = tech();
        let sizes = [128u64, 1024, 4096, 16 * 1024, 64 * 1024];
        let mut last = 0.0;
        for s in sizes {
            let m = ArrayModel::new(ArraySpec::untagged(s, 2), &t, ModelKind::WithColumnDecoders);
            let e = m.energy_per_access().total();
            assert!(e > last, "energy must grow with size ({s}: {e} !> {last})");
            last = e;
        }
    }

    #[test]
    fn new_model_exceeds_old_by_column_decoder() {
        let t = tech();
        let spec = ArraySpec::untagged(16 * 1024, 2);
        let org = ArrayModel::squarify(
            spec,
            &t,
            ModelKind::WithColumnDecoders,
            SquarifyGoal::MinEnergyDelay,
        );
        let new = ArrayModel::for_org(spec, org, &t, ModelKind::WithColumnDecoders);
        let old = ArrayModel::for_org(spec, org, &t, ModelKind::Wattch102);
        let d = new.energy_per_access().total() - old.energy_per_access().total();
        assert!(d > 0.0);
        assert!((d - new.energy_per_access().column_decoder).abs() < 1e-18);
        assert_eq!(old.energy_per_access().column_decoder, 0.0);
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let t = tech();
        let m = ArrayModel::new(
            ArraySpec::tagged(2048, 30, 2, 21),
            &t,
            ModelKind::WithColumnDecoders,
        );
        let b = m.energy_per_access();
        let sum = b.row_decoder
            + b.column_decoder
            + b.wordline
            + b.bitline
            + b.senseamp
            + b.output
            + b.tag_compare;
        assert!((b.total() - sum).abs() < 1e-20);
        assert!((b.pre_mux() + b.post_mux() - sum).abs() < 1e-20);
    }

    #[test]
    fn tagged_arrays_pay_for_comparators() {
        let t = tech();
        let tagged = ArrayModel::new(
            ArraySpec::tagged(2048, 30, 2, 21),
            &t,
            ModelKind::WithColumnDecoders,
        );
        assert!(tagged.energy_per_access().tag_compare > 0.0);
        let untagged = ArrayModel::new(
            ArraySpec::untagged(2048, 30),
            &t,
            ModelKind::WithColumnDecoders,
        );
        assert_eq!(untagged.energy_per_access().tag_compare, 0.0);
    }

    #[test]
    fn min_ed_squarify_never_worse_than_square() {
        let t = tech();
        for entries in [256u64, 8 * 1024, 32 * 1024, 64 * 1024] {
            let spec = ArraySpec::untagged(entries, 2);
            let sq = ArrayModel::with_goal(
                spec,
                &t,
                ModelKind::WithColumnDecoders,
                SquarifyGoal::AsSquareAsPossible,
            );
            let ed = ArrayModel::with_goal(
                spec,
                &t,
                ModelKind::WithColumnDecoders,
                SquarifyGoal::MinEnergyDelay,
            );
            let sq_ed = sq.energy_per_access().total() * sq.access_time_s();
            let ed_ed = ed.energy_per_access().total() * ed.access_time_s();
            assert!(
                ed_ed <= sq_ed + 1e-24,
                "min-ED ({ed_ed}) must not exceed square ({sq_ed}) at {entries}"
            );
        }
    }

    #[test]
    fn writes_cost_more_than_pre_mux_reads() {
        let t = tech();
        let m = ArrayModel::new(
            ArraySpec::untagged(4096, 2),
            &t,
            ModelKind::WithColumnDecoders,
        );
        assert!(m.energy_per_write() > m.energy_per_access().pre_mux());
    }

    #[test]
    fn max_power_is_energy_times_frequency() {
        let t = tech();
        let m = ArrayModel::new(
            ArraySpec::untagged(4096, 2),
            &t,
            ModelKind::WithColumnDecoders,
        );
        let expect = m.energy_per_access().total() * t.freq_hz;
        assert!((m.max_power_w() - expect).abs() < 1e-12);
    }

    #[test]
    fn combine_adds_componentwise() {
        let a = EnergyBreakdown {
            row_decoder: 1.0,
            bitline: 2.0,
            ..Default::default()
        };
        let b = EnergyBreakdown {
            row_decoder: 0.5,
            senseamp: 3.0,
            ..Default::default()
        };
        let c = a.combine(&b);
        assert_eq!(c.row_decoder, 1.5);
        assert_eq!(c.bitline, 2.0);
        assert_eq!(c.senseamp, 3.0);
        assert!((c.total() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn bitline_dominates_large_arrays() {
        let t = tech();
        let m = ArrayModel::new(
            ArraySpec::untagged(32 * 1024, 2),
            &t,
            ModelKind::WithColumnDecoders,
        );
        let b = m.energy_per_access();
        assert!(
            b.bitline > b.total() * 0.5,
            "bitlines should dominate: {b:?}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn energy_always_positive_and_finite(
            entries_log in 5u32..17,
            bits in 1u32..64,
        ) {
            let t = TechParams::default();
            let spec = ArraySpec::untagged(1u64 << entries_log, bits);
            let m = ArrayModel::new(spec, &t, ModelKind::WithColumnDecoders);
            let e = m.energy_per_access().total();
            prop_assert!(e.is_finite() && e > 0.0);
            prop_assert!(m.access_time_s().is_finite() && m.access_time_s() > 0.0);
            prop_assert!(m.energy_per_write().is_finite() && m.energy_per_write() > 0.0);
        }

        #[test]
        fn squarified_org_conserves_bits(entries_log in 5u32..17, bits in 1u32..32) {
            let t = TechParams::default();
            let spec = ArraySpec::untagged(1u64 << entries_log, bits);
            let m = ArrayModel::new(spec, &t, ModelKind::WithColumnDecoders);
            prop_assert_eq!(m.org().rows * m.org().cols, spec.total_bits());
        }

        #[test]
        fn old_model_never_exceeds_new_on_same_org(entries_log in 5u32..17) {
            let t = TechParams::default();
            let spec = ArraySpec::untagged(1u64 << entries_log, 2);
            let org = ArrayModel::squarify(spec, &t, ModelKind::WithColumnDecoders, SquarifyGoal::MinEnergyDelay);
            let new = ArrayModel::for_org(spec, org, &t, ModelKind::WithColumnDecoders);
            let old = ArrayModel::for_org(spec, org, &t, ModelKind::Wattch102);
            prop_assert!(old.energy_per_access().total() <= new.energy_per_access().total());
        }
    }
}
