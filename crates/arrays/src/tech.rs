//! Process/technology parameters.

/// Technology constants for the array power and timing models.
///
/// The defaults describe the paper's target: a 0.35 µm-class process at
/// `Vdd` = 2.0 V running at 1200 MHz (Section 2.1). Capacitances are
/// lumped per-cell/per-gate values in farads, in the spirit of Wattch's
/// technology header; resistances feed the Cacti-style RC timing model.
///
/// Absolute watts produced by any architectural power model are
/// calibration-dependent; [`TechParams::energy_scale`] is the single
/// documented fudge factor that maps our analytic capacitance sums onto
/// the power magnitudes the paper reports (total chip power in the
/// 30–45 W range, predictor power 2–6 W). Every *relative* result (model
/// old-vs-new, banking, PPD, size scaling) is independent of it.
///
/// # Examples
///
/// ```
/// use bw_arrays::TechParams;
///
/// let tech = TechParams::default();
/// assert_eq!(tech.vdd, 2.0);
/// assert_eq!(tech.freq_hz, 1.2e9);
/// assert!(tech.cycle_s() > 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TechParams {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Clock frequency in hertz.
    pub freq_hz: f64,
    /// Wordline capacitance per attached cell (pass gates + wire), F.
    pub c_wordline_per_cell: f64,
    /// Bitline capacitance per attached cell (drain + wire), F.
    pub c_bitline_per_cell: f64,
    /// Input capacitance of one decoder gate input, F.
    pub c_decoder_input: f64,
    /// Gate capacitance of one column-mux pass transistor, F.
    pub c_pass_gate: f64,
    /// Energy-equivalent capacitance of one sense amplifier activation, F.
    pub c_senseamp: f64,
    /// Capacitance of one output/bus driver per bit, F.
    pub c_output_driver: f64,
    /// Comparator capacitance per tag bit per way, F.
    pub c_comparator_per_bit: f64,
    /// Fraction of full `Vdd` swing seen by bitlines on a read.
    pub bitline_swing: f64,
    /// Wordline resistance per attached cell, ohms.
    pub r_wordline_per_cell: f64,
    /// Bitline resistance per attached cell, ohms.
    pub r_bitline_per_cell: f64,
    /// Fixed sense-amplifier delay, seconds.
    pub t_senseamp: f64,
    /// Fixed per-stage decoder delay, seconds.
    pub t_decoder_stage: f64,
    /// Output-mux/driver delay, seconds.
    pub t_output: f64,
    /// Global calibration multiplier applied to all array energies.
    pub energy_scale: f64,
}

impl TechParams {
    /// The paper's process point: 0.35 µm-class, 2.0 V, 1200 MHz.
    #[must_use]
    pub fn process_035um_2v_1200mhz() -> Self {
        TechParams {
            vdd: 2.0,
            freq_hz: 1.2e9,
            c_wordline_per_cell: 1.8e-15,
            c_bitline_per_cell: 2.0e-15,
            c_decoder_input: 3.0e-15,
            c_pass_gate: 0.6e-15,
            c_senseamp: 80.0e-15,
            c_output_driver: 12.0e-15,
            c_comparator_per_bit: 2.2e-15,
            bitline_swing: 0.35,
            r_wordline_per_cell: 2.4,
            r_bitline_per_cell: 3.2,
            t_senseamp: 1.0e-10,
            t_decoder_stage: 6.0e-11,
            t_output: 5.0e-11,
            energy_scale: 3.0,
        }
    }

    /// One clock period in seconds.
    ///
    /// # Examples
    ///
    /// ```
    /// let tech = bw_arrays::TechParams::default();
    /// assert!((tech.cycle_s() - 1.0 / 1.2e9).abs() < 1e-15);
    /// ```
    #[must_use]
    pub fn cycle_s(&self) -> f64 {
        1.0 / self.freq_hz
    }

    /// Energy (joules) of switching capacitance `c` (farads) through a
    /// full rail-to-rail transition at this supply voltage.
    #[must_use]
    pub fn switch_energy(&self, c: f64) -> f64 {
        c * self.vdd * self.vdd * self.energy_scale
    }

    /// Energy of switching capacitance `c` through a partial swing
    /// (`swing` volts), as bitlines do on reads.
    #[must_use]
    pub fn swing_energy(&self, c: f64, swing: f64) -> f64 {
        c * self.vdd * swing * self.energy_scale
    }
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams::process_035um_2v_1200mhz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_process_point() {
        let t = TechParams::default();
        assert_eq!(t.vdd, 2.0);
        assert_eq!(t.freq_hz, 1.2e9);
        assert_eq!(t, TechParams::process_035um_2v_1200mhz());
    }

    #[test]
    fn switch_energy_is_cv2_scaled() {
        let t = TechParams {
            energy_scale: 1.0,
            ..Default::default()
        };
        // 1 pF at 2 V -> 4 pJ.
        assert!((t.switch_energy(1e-12) - 4e-12).abs() < 1e-18);
    }

    #[test]
    fn swing_energy_below_full_switch() {
        let t = TechParams::default();
        let c = 1e-12;
        assert!(t.swing_energy(c, t.vdd * t.bitline_swing) < t.switch_energy(c));
    }

    #[test]
    fn energy_scale_is_linear() {
        let a = TechParams {
            energy_scale: 1.0,
            ..Default::default()
        };
        let b = TechParams {
            energy_scale: 3.0,
            ..Default::default()
        };
        assert!((b.switch_energy(1e-13) / a.switch_energy(1e-13) - 3.0).abs() < 1e-12);
    }
}
