//! Atomic filesystem helpers shared by every crate that persists
//! state (the run cache, the quarantine file, trace files, CSV
//! exports).
//!
//! The repo-wide rule (`raw-fs-write` in the xtask lint pass) is that
//! nothing outside this module calls `std::fs::write` directly: a
//! bare write that is interrupted — or raced by a concurrent writer —
//! leaves a truncated file that every future reader must detect and
//! survive. [`atomic_write`] removes the problem at the source:
//! readers observe either the old complete file or the new complete
//! file, never a torn intermediate state.

use std::path::{Path, PathBuf};

/// The temp-file sibling `atomic_write` stages its bytes in before
/// renaming over `path`. The process id keeps concurrent *processes*
/// from staging into the same temp file; within one process, callers
/// that race on one path must serialize themselves (the run cache
/// dedups keys, so its writers never do).
#[must_use]
pub fn staging_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map_or_else(|| "unnamed".into(), |n| n.to_string_lossy().into_owned());
    path.with_file_name(format!("{name}.{}.tmp", std::process::id()))
}

/// Writes `bytes` to `path` atomically: stage into a `.tmp` sibling,
/// then `rename` over the destination. POSIX rename is atomic within a
/// filesystem, so readers never observe a partially written file, and
/// an interrupted writer leaves only a stray `.tmp` (never a truncated
/// destination).
///
/// Parent directories are created as needed.
///
/// # Errors
///
/// Propagates filesystem errors; on a failed rename the staged temp
/// file is removed before returning.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = staging_path(path);
    // The one sanctioned raw write in the workspace: it targets the
    // staging file, which is never read by anyone.
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Appends `line` (a newline is added) to the file at `path`, creating
/// it and its parents as needed — the sanctioned append primitive for
/// append-only journals.
///
/// Appends are *not* atomic the way [`atomic_write`] is: a crash can
/// leave a torn final line. The contract is therefore different —
/// every complete earlier line survives untouched (O_APPEND never
/// rewrites), and readers must validate each line and tolerate a torn
/// tail (the flight journal checksums every line for exactly this).
/// The write is flushed and fsynced before returning so a completed
/// append survives power loss.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_line(path: &Path, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    // One write_all of the whole line: with O_APPEND each write
    // positions atomically at the end, so concurrent appenders
    // interleave whole lines, never halves of two.
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    f.write_all(&buf)?;
    f.flush()?;
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bw-fsutil-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_create_parents_and_leave_no_staging_files() {
        let dir = temp_dir("basic");
        let path = dir.join("nested").join("out.json");
        atomic_write(&path, b"{\"ok\": true}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"ok\": true}");
        let entries: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["out.json"], "no stray .tmp after success");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_whole_content() {
        let dir = temp_dir("overwrite");
        let path = dir.join("out.txt");
        atomic_write(&path, b"a much longer first version").unwrap();
        atomic_write(&path, b"short").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"short");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_line_creates_parents_and_accumulates() {
        let dir = temp_dir("append");
        let path = dir.join("nested").join("journal.log");
        append_line(&path, "one").unwrap();
        append_line(&path, "two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "one\ntwo\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn staging_path_is_a_sibling_with_pid() {
        let p = staging_path(Path::new("results/cache/x.json"));
        let s = p.to_string_lossy();
        assert!(s.starts_with("results/cache/x.json."));
        assert!(s.ends_with(".tmp"));
    }
}
