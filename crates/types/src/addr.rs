//! Instruction and data addresses.

use std::fmt;

/// The size of every instruction in the synthetic ISA, in bytes.
///
/// Like the Alpha ISA modelled by the paper, all instructions are fixed
/// width. Cache-line occupancy, fetch alignment and the PPD index all
/// derive from this constant.
pub const INST_BYTES: u64 = 4;

/// A byte address in the synthetic machine's address space.
///
/// `Addr` is used both for instruction PCs and for data addresses. It is
/// a transparent newtype over `u64` with the handful of arithmetic
/// helpers the simulator needs; exposing the inner field keeps
/// workload-generation code terse.
///
/// # Examples
///
/// ```
/// use bw_types::Addr;
///
/// let pc = Addr(0x1000);
/// assert_eq!(pc.next(), Addr(0x1004));
/// assert_eq!(pc.line_index(32), 0x1000 / 32);
/// assert!(Addr(0x101c).is_line_end(32));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Addr(pub u64);

impl Addr {
    /// The address of the sequentially next instruction.
    #[must_use]
    pub fn next(self) -> Addr {
        Addr(self.0.wrapping_add(INST_BYTES))
    }

    /// The address `n` instructions after this one.
    #[must_use]
    pub fn offset_insts(self, n: u64) -> Addr {
        Addr(self.0.wrapping_add(n * INST_BYTES))
    }

    /// Index of the cache line containing this address, for a line of
    /// `line_bytes` bytes.
    #[must_use]
    pub fn line_index(self, line_bytes: u64) -> u64 {
        self.0 / line_bytes
    }

    /// `true` if this address is the last instruction slot in its cache
    /// line (the fetch engine stops at line boundaries).
    #[must_use]
    pub fn is_line_end(self, line_bytes: u64) -> bool {
        self.0 % line_bytes == line_bytes - INST_BYTES
    }

    /// The instruction index (word index) of this address.
    #[must_use]
    pub fn inst_index(self) -> u64 {
        self.0 / INST_BYTES
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_advances_one_instruction() {
        assert_eq!(Addr(0).next(), Addr(4));
        assert_eq!(Addr(28).next(), Addr(32));
    }

    #[test]
    fn offset_insts_scales_by_inst_bytes() {
        assert_eq!(Addr(0x100).offset_insts(3), Addr(0x10c));
        assert_eq!(Addr(0x100).offset_insts(0), Addr(0x100));
    }

    #[test]
    fn line_index_groups_by_line() {
        assert_eq!(Addr(0).line_index(32), 0);
        assert_eq!(Addr(31).line_index(32), 0);
        assert_eq!(Addr(32).line_index(32), 1);
        assert_eq!(Addr(0x1000).line_index(32), 128);
    }

    #[test]
    fn line_end_detects_final_slot() {
        assert!(Addr(28).is_line_end(32));
        assert!(!Addr(24).is_line_end(32));
        assert!(!Addr(32).is_line_end(32));
        assert!(Addr(60).is_line_end(32));
    }

    #[test]
    fn wrapping_at_top_of_address_space() {
        let top = Addr(u64::MAX - 3);
        assert_eq!(top.next(), Addr(0));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr(0x1234).to_string(), "0x1234");
        assert_eq!(format!("{:x}", Addr(0xbeef)), "beef");
    }

    #[test]
    fn conversions_roundtrip() {
        let a: Addr = 0xdead_beefu64.into();
        let v: u64 = a.into();
        assert_eq!(v, 0xdead_beef);
    }
}
