//! Instruction classification: operation classes and control-transfer
//! kinds.

use std::fmt;

/// The functional-unit class of an instruction.
///
/// Classes mirror the paper's simulated machine (Table 1): four integer
/// ALUs, one integer multiply/divide unit, two FP ALUs, one FP
/// multiply/divide unit and two memory ports. Control-transfer
/// instructions execute on the integer ALUs.
///
/// # Examples
///
/// ```
/// use bw_types::OpClass;
///
/// assert!(OpClass::Load.is_mem());
/// assert!(!OpClass::IntAlu.is_mem());
/// assert!(OpClass::FpMul.is_fp());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OpClass {
    /// Simple integer operation (1-cycle latency).
    IntAlu,
    /// Integer multiply or divide.
    IntMul,
    /// Simple floating-point operation.
    FpAlu,
    /// Floating-point multiply or divide.
    FpMul,
    /// Memory load (uses a memory port and the D-cache).
    Load,
    /// Memory store (uses a memory port and the D-cache).
    Store,
    /// Control-transfer instruction (executes on an integer ALU).
    Cti,
}

impl OpClass {
    /// `true` for loads and stores.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// `true` for floating-point operation classes.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul)
    }

    /// All operation classes, in a fixed order (useful for iteration in
    /// statistics code).
    pub const ALL: [OpClass; 7] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::Load,
        OpClass::Store,
        OpClass::Cti,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::FpAlu => "fp-alu",
            OpClass::FpMul => "fp-mul",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Cti => "cti",
        };
        f.write_str(s)
    }
}

/// The kind of a control-transfer instruction (CTI).
///
/// The distinction matters to the front end: conditional branches consult
/// the direction predictor, every CTI kind consults the BTB, and
/// calls/returns exercise the return-address stack. The prediction probe
/// detector's two pre-decode bits are exactly "line contains a
/// conditional branch" and "line contains any CTI".
///
/// # Examples
///
/// ```
/// use bw_types::CtiKind;
///
/// assert!(CtiKind::CondBranch.is_conditional());
/// assert!(CtiKind::Return.uses_ras());
/// assert!(CtiKind::Call.uses_ras());
/// assert!(!CtiKind::Jump.uses_ras());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CtiKind {
    /// Conditional direct branch: consults the direction predictor.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Direct call: pushes the return address on the RAS.
    Call,
    /// Return: pops the RAS.
    Return,
    /// Indirect jump (target known only at execute; predicted by BTB).
    IndirectJump,
}

impl CtiKind {
    /// `true` only for conditional branches (the direction-predictor
    /// clients).
    #[must_use]
    pub fn is_conditional(self) -> bool {
        matches!(self, CtiKind::CondBranch)
    }

    /// `true` if this CTI pushes or pops the return-address stack.
    #[must_use]
    pub fn uses_ras(self) -> bool {
        matches!(self, CtiKind::Call | CtiKind::Return)
    }

    /// `true` if the CTI always transfers control (everything but a
    /// conditional branch).
    #[must_use]
    pub fn is_unconditional(self) -> bool {
        !self.is_conditional()
    }
}

impl fmt::Display for CtiKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CtiKind::CondBranch => "cond",
            CtiKind::Jump => "jump",
            CtiKind::Call => "call",
            CtiKind::Return => "return",
            CtiKind::IndirectJump => "ijump",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_classification() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        for c in [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::FpAlu,
            OpClass::FpMul,
            OpClass::Cti,
        ] {
            assert!(!c.is_mem(), "{c} must not be mem");
        }
    }

    #[test]
    fn fp_classification() {
        assert!(OpClass::FpAlu.is_fp());
        assert!(OpClass::FpMul.is_fp());
        assert!(!OpClass::IntAlu.is_fp());
        assert!(!OpClass::Load.is_fp());
    }

    #[test]
    fn all_contains_each_class_once() {
        for c in OpClass::ALL {
            assert_eq!(OpClass::ALL.iter().filter(|&&x| x == c).count(), 1);
        }
        assert_eq!(OpClass::ALL.len(), 7);
    }

    #[test]
    fn cti_conditionality() {
        assert!(CtiKind::CondBranch.is_conditional());
        assert!(!CtiKind::CondBranch.is_unconditional());
        for k in [
            CtiKind::Jump,
            CtiKind::Call,
            CtiKind::Return,
            CtiKind::IndirectJump,
        ] {
            assert!(k.is_unconditional(), "{k} is unconditional");
        }
    }

    #[test]
    fn ras_users() {
        assert!(CtiKind::Call.uses_ras());
        assert!(CtiKind::Return.uses_ras());
        assert!(!CtiKind::Jump.uses_ras());
        assert!(!CtiKind::CondBranch.uses_ras());
        assert!(!CtiKind::IndirectJump.uses_ras());
    }

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(OpClass::IntAlu.to_string(), "int-alu");
        assert_eq!(CtiKind::Return.to_string(), "return");
    }
}
