//! Branch outcomes.

use std::fmt;

/// The resolved (or predicted) direction of a conditional branch.
///
/// # Examples
///
/// ```
/// use bw_types::Outcome;
///
/// let o = Outcome::from_bool(true);
/// assert_eq!(o, Outcome::Taken);
/// assert!(o.is_taken());
/// assert_eq!(o.flip(), Outcome::NotTaken);
/// assert_eq!(o.as_bit(), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Outcome {
    /// The branch was (or is predicted) not taken: control falls through.
    NotTaken,
    /// The branch was (or is predicted) taken: control transfers to the
    /// target.
    Taken,
}

impl Outcome {
    /// Builds an outcome from a boolean, `true` meaning taken.
    #[must_use]
    pub fn from_bool(taken: bool) -> Self {
        if taken {
            Outcome::Taken
        } else {
            Outcome::NotTaken
        }
    }

    /// `true` if the branch is taken.
    #[must_use]
    pub fn is_taken(self) -> bool {
        matches!(self, Outcome::Taken)
    }

    /// The opposite direction.
    #[must_use]
    pub fn flip(self) -> Self {
        match self {
            Outcome::Taken => Outcome::NotTaken,
            Outcome::NotTaken => Outcome::Taken,
        }
    }

    /// The outcome as a history bit (1 = taken), as shifted into branch
    /// history registers.
    #[must_use]
    pub fn as_bit(self) -> u64 {
        match self {
            Outcome::Taken => 1,
            Outcome::NotTaken => 0,
        }
    }
}

impl Default for Outcome {
    /// Defaults to [`Outcome::NotTaken`], matching a cold predictor's
    /// weakly-not-taken initial state.
    fn default() -> Self {
        Outcome::NotTaken
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Taken => "taken",
            Outcome::NotTaken => "not-taken",
        })
    }
}

impl From<bool> for Outcome {
    fn from(taken: bool) -> Self {
        Outcome::from_bool(taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bool_roundtrips() {
        assert_eq!(Outcome::from_bool(true), Outcome::Taken);
        assert_eq!(Outcome::from_bool(false), Outcome::NotTaken);
        assert!(Outcome::from_bool(true).is_taken());
        assert!(!Outcome::from_bool(false).is_taken());
    }

    #[test]
    fn flip_is_involution() {
        for o in [Outcome::Taken, Outcome::NotTaken] {
            assert_eq!(o.flip().flip(), o);
            assert_ne!(o.flip(), o);
        }
    }

    #[test]
    fn history_bits() {
        assert_eq!(Outcome::Taken.as_bit(), 1);
        assert_eq!(Outcome::NotTaken.as_bit(), 0);
    }

    #[test]
    fn default_is_not_taken() {
        assert_eq!(Outcome::default(), Outcome::NotTaken);
    }
}
