//! Shared primitive types for the `branchwatt` simulator.
//!
//! This crate defines the vocabulary types used throughout the
//! reproduction of *Power Issues Related to Branch Prediction*
//! (HPCA 2002): instruction addresses, branch outcomes, instruction
//! operation classes and control-transfer kinds.
//!
//! Everything here is deliberately small, `Copy`, and dependency-free so
//! the higher-level crates (`bw-arrays`, `bw-workload`, `bw-predictors`,
//! `bw-uarch`, `bw-power`) can share it without coupling.
//!
//! # Examples
//!
//! ```
//! use bw_types::{Addr, Outcome};
//!
//! let pc = Addr(0x12_0000);
//! assert_eq!(pc.next(), Addr(0x12_0004));
//! assert_eq!(Outcome::Taken.flip(), Outcome::NotTaken);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod fsutil;
mod inst;
mod outcome;

pub use addr::{Addr, INST_BYTES};
pub use inst::{CtiKind, OpClass};
pub use outcome::Outcome;

/// A simulator cycle count.
pub type Cycle = u64;

/// A monotonically increasing instruction sequence number.
///
/// Sequence numbers order instructions in flight: every fetched
/// instruction (correct-path or wrong-path) receives a fresh `Seq`, and
/// squashing discards all entries younger than the mispredicted branch.
pub type Seq = u64;
