//! Fine-grained branch-predictor power model.

use bw_arrays::{ArrayModel, ArraySpec, BankedArrayModel, EnergyBreakdown, ModelKind, TechParams};
use bw_predictors::{Storage, StorageRole};

use crate::activity::BpredActivity;
use crate::units::CC3_IDLE_FRACTION;

/// Which PPD timing scenario is modelled (Section 4.2, Figure 15b).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PpdScenario {
    /// Scenario 1: the PPD is fast enough to sequence before the
    /// BTB/direction-predictor access; a gated lookup is skipped
    /// entirely.
    One,
    /// Scenario 2: the accesses start every cycle and the PPD only
    /// stops them after the bitlines, before the column multiplexor; a
    /// gated lookup still spends the pre-mux energy.
    Two,
}

/// Configuration of the predictor power model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BpredOptions {
    /// Array power model (Figure 2's old-vs-new comparison).
    pub kind: ModelKind,
    /// Bank the direction-predictor arrays per Table 3 (Section 4.1).
    pub banked: bool,
    /// Include a PPD and its per-cycle lookup cost (Section 4.2).
    pub ppd: Option<PpdScenario>,
}

impl Default for BpredOptions {
    /// New array model, unbanked, no PPD — the paper's base
    /// configuration.
    fn default() -> Self {
        BpredOptions {
            kind: ModelKind::WithColumnDecoders,
            banked: false,
            ppd: None,
        }
    }
}

/// Per-access energies for one predictor array.
#[derive(Clone, Debug)]
struct ArrayEnergies {
    #[allow(dead_code)] // retained for debugging/reporting
    role: StorageRole,
    reads_per_lookup: f64,
    writes_per_update: f64,
    read: EnergyBreakdown,
    write_j: f64,
    access_time_s: f64,
}

/// The branch-prediction power model: per-array energies for the
/// direction predictor, BTB, RAS and (optionally) PPD.
///
/// # Examples
///
/// ```
/// use bw_power::{BpredOptions, BpredPower};
/// use bw_predictors::PredictorConfig;
/// use bw_arrays::TechParams;
///
/// let tech = TechParams::default();
/// let pred = PredictorConfig::gshare(32 * 1024, 12).build();
/// let flat = BpredPower::new(&pred.storages(), &tech, BpredOptions::default());
/// let banked = BpredPower::new(
///     &pred.storages(),
///     &tech,
///     BpredOptions { banked: true, ..Default::default() },
/// );
/// assert!(banked.dir_lookup_energy_j() < flat.dir_lookup_energy_j());
/// ```
#[derive(Clone, Debug)]
pub struct BpredPower {
    dir_arrays: Vec<ArrayEnergies>,
    btb: ArrayEnergies,
    ras: ArrayEnergies,
    ppd: Option<ArrayEnergies>,
    options: BpredOptions,
    source_storages: Vec<Storage>,
    tech: TechParams,
    /// Sum of full-lookup read energies (dir + BTB + RAS + PPD): the
    /// "max power" numerator for cc3 idle dissipation.
    max_cycle_energy_j: f64,
}

/// The paper's BTB configuration, used when the caller's storage list
/// does not include one.
fn default_btb_spec() -> ArraySpec {
    ArraySpec::tagged(2048, 30, 2, 21)
}

fn default_ras_spec() -> ArraySpec {
    ArraySpec::untagged(32, 32)
}

fn default_ppd_spec() -> ArraySpec {
    ArraySpec::untagged(2048, 2)
}

impl BpredPower {
    /// Builds energies for a predictor's storages plus the standard
    /// BTB and RAS (and a PPD when `options.ppd` is set).
    ///
    /// `storages` should be the direction predictor's
    /// [`DirectionPredictor::storages`](bw_predictors::DirectionPredictor::storages)
    /// list; any BTB/RAS/PPD entries in it override the defaults.
    #[must_use]
    pub fn new(storages: &[Storage], tech: &TechParams, options: BpredOptions) -> Self {
        let build = |s: &Storage, bank: bool| -> ArrayEnergies {
            if bank {
                let m = BankedArrayModel::new(s.spec, tech, options.kind);
                ArrayEnergies {
                    role: s.role,
                    reads_per_lookup: s.reads_per_lookup,
                    writes_per_update: s.writes_per_update,
                    read: m.energy_per_access(),
                    write_j: m.energy_per_write(),
                    access_time_s: m.access_time_s(),
                }
            } else {
                let m = ArrayModel::new(s.spec, tech, options.kind);
                ArrayEnergies {
                    role: s.role,
                    reads_per_lookup: s.reads_per_lookup,
                    writes_per_update: s.writes_per_update,
                    read: m.energy_per_access(),
                    write_j: m.energy_per_write(),
                    access_time_s: m.access_time_s(),
                }
            }
        };

        let mut dir_arrays = Vec::new();
        let mut btb = None;
        let mut ras = None;
        let mut ppd = None;
        for s in storages {
            match s.role {
                StorageRole::Pht | StorageRole::Bht | StorageRole::Selector => {
                    dir_arrays.push(build(s, options.banked));
                }
                // A standalone confidence table is read in parallel
                // with the direction predictor (and never banked).
                StorageRole::Confidence => dir_arrays.push(build(s, false)),
                StorageRole::Btb => btb = Some(build(s, false)),
                StorageRole::Ras => ras = Some(build(s, false)),
                StorageRole::Ppd => ppd = Some(build(s, false)),
            }
        }
        let btb = btb.unwrap_or_else(|| {
            build(
                &Storage {
                    role: StorageRole::Btb,
                    spec: default_btb_spec(),
                    reads_per_lookup: 1.0,
                    writes_per_update: 1.0,
                },
                false,
            )
        });
        let ras = ras.unwrap_or_else(|| {
            build(
                &Storage {
                    role: StorageRole::Ras,
                    spec: default_ras_spec(),
                    reads_per_lookup: 1.0,
                    writes_per_update: 1.0,
                },
                false,
            )
        });
        if options.ppd.is_some() && ppd.is_none() {
            ppd = Some(build(
                &Storage {
                    role: StorageRole::Ppd,
                    spec: default_ppd_spec(),
                    reads_per_lookup: 1.0,
                    writes_per_update: 1.0,
                },
                false,
            ));
        }

        let mut max_cycle_energy_j = btb.read.total() + ras.read.total();
        for a in &dir_arrays {
            max_cycle_energy_j += a.read.total() * a.reads_per_lookup;
        }
        if let Some(p) = &ppd {
            max_cycle_energy_j += p.read.total();
        }

        BpredPower {
            dir_arrays,
            btb,
            ras,
            ppd,
            options,
            source_storages: storages.to_vec(),
            tech: tech.clone(),
            max_cycle_energy_j,
        }
    }

    /// The storage list this model was built from.
    #[must_use]
    pub fn storages(&self) -> Vec<Storage> {
        self.source_storages.clone()
    }

    /// The technology parameters this model was built with.
    #[must_use]
    pub fn tech(&self) -> TechParams {
        self.tech.clone()
    }

    /// Energy of one commit-time direction-predictor update (all
    /// component arrays written).
    #[must_use]
    pub fn dir_update_energy_j(&self) -> f64 {
        self.dir_arrays
            .iter()
            .map(|a| a.write_j * a.writes_per_update)
            .sum()
    }

    /// Energy of one BTB update.
    #[must_use]
    pub fn btb_update_energy_j(&self) -> f64 {
        self.btb.write_j
    }

    /// Energy of one RAS push/pop.
    #[must_use]
    pub fn ras_op_energy_j(&self) -> f64 {
        self.ras.read.total()
    }

    /// Energy of one PPD refill write.
    #[must_use]
    pub fn ppd_update_energy_j(&self) -> f64 {
        self.ppd.as_ref().map_or(0.0, |p| p.write_j)
    }

    /// The options this model was built with.
    #[must_use]
    pub fn options(&self) -> BpredOptions {
        self.options
    }

    /// Energy of one full direction-predictor lookup (all component
    /// arrays), joules.
    #[must_use]
    pub fn dir_lookup_energy_j(&self) -> f64 {
        self.dir_arrays
            .iter()
            .map(|a| a.read.total() * a.reads_per_lookup)
            .sum()
    }

    /// Energy of one Scenario-2 gated direction lookup (pre-mux only).
    #[must_use]
    pub fn dir_partial_energy_j(&self) -> f64 {
        self.dir_arrays
            .iter()
            .map(|a| a.read.pre_mux() * a.reads_per_lookup)
            .sum()
    }

    /// Energy of one full BTB lookup.
    #[must_use]
    pub fn btb_lookup_energy_j(&self) -> f64 {
        self.btb.read.total()
    }

    /// Energy of one Scenario-2 gated BTB lookup.
    #[must_use]
    pub fn btb_partial_energy_j(&self) -> f64 {
        self.btb.read.pre_mux()
    }

    /// Energy of one PPD read, if a PPD is configured.
    #[must_use]
    pub fn ppd_lookup_energy_j(&self) -> f64 {
        self.ppd.as_ref().map_or(0.0, |p| p.read.total())
    }

    /// Worst-case access time across the direction-predictor arrays.
    #[must_use]
    pub fn dir_access_time_s(&self) -> f64 {
        self.dir_arrays
            .iter()
            .map(|a| a.access_time_s)
            .fold(0.0, f64::max)
    }

    /// Maximum per-cycle energy (everything looked up once): the cc3
    /// idle baseline derives from this.
    #[must_use]
    pub fn max_cycle_energy_j(&self) -> f64 {
        self.max_cycle_energy_j
    }

    /// Maximum power in watts at clock `freq_hz`.
    #[must_use]
    pub fn max_power_w(&self, freq_hz: f64) -> f64 {
        self.max_cycle_energy_j * freq_hz
    }

    /// Energy consumed by the predictor structures in one cycle with
    /// the given activity, under cc3 gating.
    #[must_use]
    pub fn cycle_energy_j(&self, act: &BpredActivity) -> f64 {
        let mut active = 0.0;
        for a in &self.dir_arrays {
            active += a.read.total() * a.reads_per_lookup * f64::from(act.dir_lookups);
            active += a.read.pre_mux() * a.reads_per_lookup * f64::from(act.dir_partial_lookups);
            active += a.write_j * a.writes_per_update * f64::from(act.dir_updates);
        }
        active += self.btb.read.total() * f64::from(act.btb_lookups);
        active += self.btb.read.pre_mux() * f64::from(act.btb_partial_lookups);
        active += self.btb.write_j * f64::from(act.btb_updates);
        active += self.ras.read.total() * f64::from(act.ras_ops);
        if let Some(p) = &self.ppd {
            active += p.read.total() * f64::from(act.ppd_lookups);
            active += p.write_j * f64::from(act.ppd_updates);
        }
        CC3_IDLE_FRACTION * self.max_cycle_energy_j + (1.0 - CC3_IDLE_FRACTION) * active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_predictors::PredictorConfig;

    fn storages(cfg: PredictorConfig) -> Vec<Storage> {
        cfg.build().storages()
    }

    fn full_cycle() -> BpredActivity {
        BpredActivity {
            dir_lookups: 1,
            btb_lookups: 1,
            ..Default::default()
        }
    }

    #[test]
    fn bigger_predictors_burn_more() {
        let tech = TechParams::default();
        let small = BpredPower::new(
            &storages(PredictorConfig::bimodal(128)),
            &tech,
            BpredOptions::default(),
        );
        let large = BpredPower::new(
            &storages(PredictorConfig::gshare(32 * 1024, 12)),
            &tech,
            BpredOptions::default(),
        );
        assert!(large.dir_lookup_energy_j() > small.dir_lookup_energy_j());
        assert!(large.max_power_w(1.2e9) > small.max_power_w(1.2e9));
    }

    #[test]
    fn bpred_power_magnitude_is_paperlike() {
        // Figure 7a: predictor power (dir + BTB) between ~2 and ~6 W.
        let tech = TechParams::default();
        for cfg in [
            PredictorConfig::bimodal(4096),
            PredictorConfig::gshare(16 * 1024, 12),
            PredictorConfig::gshare(32 * 1024, 12),
        ] {
            let p = BpredPower::new(&storages(cfg), &tech, BpredOptions::default());
            let w = p.max_power_w(tech.freq_hz);
            assert!((1.0..8.0).contains(&w), "{cfg:?}: {w} W");
        }
    }

    #[test]
    fn banking_reduces_lookup_energy_for_large_tables() {
        let tech = TechParams::default();
        let s = storages(PredictorConfig::gshare(32 * 1024, 12));
        let flat = BpredPower::new(&s, &tech, BpredOptions::default());
        let banked = BpredPower::new(
            &s,
            &tech,
            BpredOptions {
                banked: true,
                ..Default::default()
            },
        );
        assert!(banked.dir_lookup_energy_j() < flat.dir_lookup_energy_j());
        // The BTB is not banked: its energy is unchanged.
        assert!((banked.btb_lookup_energy_j() - flat.btb_lookup_energy_j()).abs() < 1e-24);
    }

    #[test]
    fn ppd_scenarios_order_correctly() {
        let tech = TechParams::default();
        let s = storages(PredictorConfig::gshare(32 * 1024, 12));
        let p = BpredPower::new(
            &s,
            &tech,
            BpredOptions {
                ppd: Some(PpdScenario::One),
                ..Default::default()
            },
        );
        // A gated Scenario-2 access costs less than a full lookup but
        // more than nothing.
        assert!(p.dir_partial_energy_j() > 0.0);
        assert!(p.dir_partial_energy_j() < p.dir_lookup_energy_j());
        assert!(p.btb_partial_energy_j() < p.btb_lookup_energy_j());
        // The PPD itself is small: far cheaper than the structures it
        // gates.
        assert!(
            p.ppd_lookup_energy_j() < 0.2 * (p.dir_lookup_energy_j() + p.btb_lookup_energy_j())
        );
        assert!(p.ppd_lookup_energy_j() > 0.0);
    }

    #[test]
    fn cc3_idle_floor() {
        let tech = TechParams::default();
        let p = BpredPower::new(
            &storages(PredictorConfig::gshare(16 * 1024, 12)),
            &tech,
            BpredOptions::default(),
        );
        let idle = p.cycle_energy_j(&BpredActivity::idle());
        assert!((idle - 0.1 * p.max_cycle_energy_j()).abs() < 1e-20);
        let busy = p.cycle_energy_j(&full_cycle());
        assert!(busy > idle);
    }

    #[test]
    fn updates_cost_energy() {
        let tech = TechParams::default();
        let p = BpredPower::new(
            &storages(PredictorConfig::bimodal(4096)),
            &tech,
            BpredOptions::default(),
        );
        let mut with_update = full_cycle();
        with_update.dir_updates = 1;
        assert!(p.cycle_energy_j(&with_update) > p.cycle_energy_j(&full_cycle()));
    }

    #[test]
    fn hybrid_lookup_touches_all_component_arrays() {
        use bw_predictors::HybridConfig;
        let tech = TechParams::default();
        let hybrid = BpredPower::new(
            &storages(PredictorConfig::Hybrid(HybridConfig::alpha_21264())),
            &tech,
            BpredOptions::default(),
        );
        let gshare_16k = BpredPower::new(
            &storages(PredictorConfig::gshare(16 * 1024, 12)),
            &tech,
            BpredOptions::default(),
        );
        // 26-Kbit hybrid (4 arrays) vs 32-Kbit gshare (1 array): the
        // hybrid's parallel component lookups close most of the size
        // gap in energy.
        assert!(hybrid.dir_lookup_energy_j() > 0.5 * gshare_16k.dir_lookup_energy_j());
    }

    #[test]
    fn old_model_cheaper_than_new() {
        let tech = TechParams::default();
        let s = storages(PredictorConfig::gshare(16 * 1024, 12));
        let new = BpredPower::new(&s, &tech, BpredOptions::default());
        let old = BpredPower::new(
            &s,
            &tech,
            BpredOptions {
                kind: ModelKind::Wattch102,
                ..Default::default()
            },
        );
        assert!(old.dir_lookup_energy_j() < new.dir_lookup_energy_j());
        assert!(old.btb_lookup_energy_j() < new.btb_lookup_energy_j());
    }
}
