//! Energy-conservation auditing (the `audit` feature).
//!
//! [`EnergyLedger`] is the power half of the runtime sanitizer: it
//! watches the per-cycle [`EnergyReport`] stream and re-derives the
//! chip total from per-unit deltas it accumulates itself. Any
//! mis-accounted access — a negative per-cycle delta, a NaN, or drift
//! between the chip's total and the sum of its structure components —
//! surfaces as an invariant violation instead of silently shifting a
//! figure.

use bw_audit::{Boundary, Invariant};

use crate::chip::EnergyReport;

/// Relative tolerance for the conservation comparison (the issue's
/// 1e-9 bound).
const REL_TOL: f64 = 1e-9;
/// Absolute floor so near-zero totals do not trip on representation
/// noise.
const ABS_TOL: f64 = 1e-12;

/// An independent re-accumulation of chip energy, checked against the
/// chip's own total every cycle.
///
/// # Examples
///
/// ```
/// use bw_power::audit::EnergyLedger;
/// use bw_power::EnergyReport;
///
/// let mut ledger = EnergyLedger::new();
/// let mut report = EnergyReport {
///     energy_j: [0.0; 12],
///     cycles: 1,
///     cycle_s: 1.0 / 1.2e9,
/// };
/// report.energy_j[0] = 1e-10;
/// assert!(ledger.observe(&report).is_ok());
/// ```
#[derive(Clone, Debug, Default)]
pub struct EnergyLedger {
    prev: Option<EnergyReport>,
    accumulated_j: f64,
}

impl EnergyLedger {
    /// A fresh ledger (no cycles observed).
    #[must_use]
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Total energy in joules the ledger has independently accumulated.
    #[must_use]
    pub fn accumulated_j(&self) -> f64 {
        self.accumulated_j
    }

    /// Observes the report for one cycle and checks conservation:
    /// every per-unit delta is finite and non-negative, and the chip's
    /// running total equals the ledger's independent sum of per-unit
    /// deltas within `1e-9` relative.
    ///
    /// # Errors
    ///
    /// Returns a description of the first conservation failure.
    pub fn observe(&mut self, report: &EnergyReport) -> Result<(), String> {
        let zero = [0.0; 12];
        let prev_energy = self.prev.as_ref().map_or(&zero, |p| &p.energy_j);
        let mut cycle_sum = 0.0;
        for (unit, (now, before)) in report.energy_j.iter().zip(prev_energy).enumerate() {
            let delta = now - before;
            if !delta.is_finite() {
                return Err(format!("unit {unit} energy delta is not finite ({delta})"));
            }
            if delta < 0.0 {
                return Err(format!(
                    "unit {unit} energy decreased by {:.3e} J in one cycle",
                    -delta
                ));
            }
            cycle_sum += delta;
        }
        self.accumulated_j += cycle_sum;
        self.prev = Some(*report);

        let total = report.total_energy_j();
        let err = (total - self.accumulated_j).abs();
        let tol = ABS_TOL.max(REL_TOL * total.abs());
        if err > tol {
            return Err(format!(
                "chip total {total:.12e} J diverged from per-unit ledger \
                 {:.12e} J by {err:.3e} J (tol {tol:.3e})",
                self.accumulated_j
            ));
        }
        Ok(())
    }
}

impl Invariant<EnergyReport> for EnergyLedger {
    fn name(&self) -> &'static str {
        "energy-conservation"
    }

    fn boundary(&self) -> Boundary {
        Boundary::Cycle
    }

    fn check(&mut self, ctx: &EnergyReport) -> Result<(), String> {
        self.observe(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Activity, BpredActivity};
    use crate::bpred::{BpredOptions, BpredPower};
    use crate::chip::ChipPower;
    use bw_arrays::TechParams;
    use bw_audit::Registry;
    use bw_predictors::PredictorConfig;

    fn report(units: &[(usize, f64)], cycles: u64) -> EnergyReport {
        let mut energy_j = [0.0; 12];
        for &(i, e) in units {
            energy_j[i] = e;
        }
        EnergyReport {
            energy_j,
            cycles,
            cycle_s: 1.0 / 1.2e9,
        }
    }

    #[test]
    fn real_chip_stream_is_conserved() {
        let tech = TechParams::default();
        let bpred = BpredPower::new(
            &PredictorConfig::gshare(16 * 1024, 12).build().storages(),
            &tech,
            BpredOptions::default(),
        );
        let mut chip = ChipPower::new(&tech, bpred);
        let mut ledger = EnergyLedger::new();
        let act = Activity {
            rename: 2,
            window: 5,
            icache: 1,
            ialu: 2,
            clock_64ths: 40,
            ..Default::default()
        };
        let bact = BpredActivity {
            dir_lookups: 1,
            btb_lookups: 1,
            ..Default::default()
        };
        for cycle in 0..5000 {
            if cycle % 3 == 0 {
                chip.tick(&act, &bact);
            } else {
                chip.tick(&Activity::default(), &BpredActivity::idle());
            }
            ledger.observe(&chip.report()).expect("conserved");
        }
        let total = chip.total_energy_j();
        assert!((ledger.accumulated_j() - total).abs() <= 1e-9 * total);
    }

    #[test]
    fn negative_delta_is_caught() {
        let mut ledger = EnergyLedger::new();
        ledger.observe(&report(&[(0, 2e-10)], 1)).expect("fine");
        let err = ledger.observe(&report(&[(0, 1e-10)], 2)).unwrap_err();
        assert!(err.contains("decreased"), "{err}");
    }

    #[test]
    fn nan_is_caught() {
        let mut ledger = EnergyLedger::new();
        let err = ledger.observe(&report(&[(3, f64::NAN)], 1)).unwrap_err();
        assert!(err.contains("not finite"), "{err}");
    }

    #[test]
    fn ledger_divergence_is_caught() {
        // Feed a consistent cycle, then hand the ledger a report whose
        // components do not sum to what the totals imply by skipping a
        // cycle's worth of growth in one unit while shrinking nothing:
        // simulate external tampering via a direct accumulated offset.
        let mut ledger = EnergyLedger::new();
        ledger.observe(&report(&[(0, 1e-9)], 1)).expect("fine");
        ledger.accumulated_j += 1e-9; // tamper: ledger no longer matches
        let err = ledger.observe(&report(&[(0, 2e-9)], 2)).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn works_as_registry_invariant() {
        let mut reg: Registry<EnergyReport> = Registry::new("unit-test");
        reg.register(Box::new(EnergyLedger::new()));
        reg.check_at(Boundary::Cycle, 1, &report(&[(0, 1e-10)], 1));
        reg.check_at(Boundary::Cycle, 2, &report(&[(0, 5e-11)], 2));
        assert_eq!(reg.total_violations(), 1);
        assert_eq!(reg.violations()[0].invariant, "energy-conservation");
    }
}
