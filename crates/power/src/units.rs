//! Chip units and their maximum-power budget.

/// Fraction of maximum power an inactive unit still dissipates under
/// Wattch's non-ideal aggressive clock-gating style ("cc3").
pub const CC3_IDLE_FRACTION: f64 = 0.10;

/// The chip units tracked by the power model, mirroring Wattch's
/// breakdown of a Wattch/SimpleScalar out-of-order core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Unit {
    /// Register rename logic (RAT + dependence check).
    Rename,
    /// Branch-prediction structures (direction predictor + BTB + RAS,
    /// and the PPD when present). Modelled finely by
    /// [`BpredPower`](crate::BpredPower).
    Bpred,
    /// The register update unit (instruction window + reorder state).
    Window,
    /// The load/store queue.
    Lsq,
    /// Architectural/physical register file.
    Regfile,
    /// L1 instruction cache.
    Icache,
    /// L1 data cache.
    Dcache,
    /// Unified L2 cache.
    Dcache2,
    /// Integer ALUs (including the multiplier).
    Ialu,
    /// Floating-point units.
    Falu,
    /// Result/forwarding buses.
    ResultBus,
    /// Global clock distribution.
    Clock,
}

impl Unit {
    /// All units in display order.
    pub const ALL: [Unit; 12] = [
        Unit::Rename,
        Unit::Bpred,
        Unit::Window,
        Unit::Lsq,
        Unit::Regfile,
        Unit::Icache,
        Unit::Dcache,
        Unit::Dcache2,
        Unit::Ialu,
        Unit::Falu,
        Unit::ResultBus,
        Unit::Clock,
    ];

    /// Stable index into per-unit arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Unit::Rename => "rename",
            Unit::Bpred => "bpred",
            Unit::Window => "window",
            Unit::Lsq => "lsq",
            Unit::Regfile => "regfile",
            Unit::Icache => "icache",
            Unit::Dcache => "dcache",
            Unit::Dcache2 => "dcache2",
            Unit::Ialu => "ialu",
            Unit::Falu => "falu",
            Unit::ResultBus => "resultbus",
            Unit::Clock => "clock",
        }
    }
}

/// Maximum power (watts) and port count per unit.
///
/// The defaults describe the paper's Alpha-21264-like configuration at
/// 2.0 V / 1200 MHz, calibrated so that typical SPECint activity lands
/// in the 30–40 W chip-power range the paper reports (Figure 7b), with
/// the branch predictor contributing roughly 10 %.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UnitBudget {
    /// Maximum power in watts, by [`Unit::index`]. `Bpred`'s slot is
    /// ignored (computed from its arrays instead).
    pub max_power_w: [f64; 12],
    /// Port counts used for linear activity scaling.
    pub ports: [u32; 12],
}

impl UnitBudget {
    /// The calibrated Alpha-21264-like budget.
    #[must_use]
    pub fn alpha21264_like() -> Self {
        let mut max_power_w = [0.0; 12];
        let mut ports = [1u32; 12];
        let set = |m: &mut [f64; 12], p: &mut [u32; 12], u: Unit, w: f64, n: u32| {
            m[u.index()] = w;
            p[u.index()] = n;
        };
        set(&mut max_power_w, &mut ports, Unit::Rename, 2.0, 6);
        set(&mut max_power_w, &mut ports, Unit::Window, 8.5, 6);
        set(&mut max_power_w, &mut ports, Unit::Lsq, 2.5, 2);
        set(&mut max_power_w, &mut ports, Unit::Regfile, 4.0, 6);
        set(&mut max_power_w, &mut ports, Unit::Icache, 6.0, 1);
        set(&mut max_power_w, &mut ports, Unit::Dcache, 6.5, 2);
        set(&mut max_power_w, &mut ports, Unit::Dcache2, 3.0, 1);
        set(&mut max_power_w, &mut ports, Unit::Ialu, 5.0, 5);
        set(&mut max_power_w, &mut ports, Unit::Falu, 3.0, 3);
        set(&mut max_power_w, &mut ports, Unit::ResultBus, 3.5, 6);
        set(&mut max_power_w, &mut ports, Unit::Clock, 12.0, 1);
        // Bpred computed from its array models.
        UnitBudget { max_power_w, ports }
    }

    /// Sum of all unit maxima (excluding the predictor).
    #[must_use]
    pub fn total_non_bpred_max_w(&self) -> f64 {
        self.max_power_w.iter().sum()
    }
}

impl Default for UnitBudget {
    fn default() -> Self {
        UnitBudget::alpha21264_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, u) in Unit::ALL.iter().enumerate() {
            assert_eq!(u.index(), i);
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = Unit::ALL.iter().map(|u| u.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn budget_magnitudes_are_plausible() {
        let b = UnitBudget::default();
        let total = b.total_non_bpred_max_w();
        // Non-predictor budget of an early-2000s high-end core.
        assert!((30.0..70.0).contains(&total), "total {total}");
        assert_eq!(b.max_power_w[Unit::Bpred.index()], 0.0);
        assert!(b.ports[Unit::Window.index()] >= 4);
    }
}
