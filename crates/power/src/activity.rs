//! Per-cycle activity counts produced by the core and consumed by the
//! power model.

/// Access counts for the non-predictor units during one cycle.
///
/// The core fills one of these per cycle; each field is the number of
/// port-uses of the corresponding unit. Under cc3 gating a unit's
/// power scales linearly with `used / ports` (clamped to 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Activity {
    /// Instructions renamed/dispatched this cycle.
    pub rename: u32,
    /// Window (RUU) accesses: dispatches + issues + writebacks.
    pub window: u32,
    /// LSQ accesses.
    pub lsq: u32,
    /// Register file reads + writes.
    pub regfile: u32,
    /// I-cache accesses (one per active fetch cycle).
    pub icache: u32,
    /// D-cache accesses.
    pub dcache: u32,
    /// L2 accesses.
    pub dcache2: u32,
    /// Integer-ALU operations started.
    pub ialu: u32,
    /// FP operations started.
    pub falu: u32,
    /// Results driven onto the forwarding buses.
    pub resultbus: u32,
    /// Fraction of the core considered clocked this cycle, in
    /// 1/64ths (64 = fully active). The clock network burns
    /// proportionally.
    pub clock_64ths: u32,
}

/// Access counts for the branch-prediction structures during one
/// cycle.
///
/// Lookups are charged per *active fetch cycle* (the paper's modified
/// Wattch fetch accounting), not per branch; a PPD turns full lookups
/// into skipped or partial ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BpredActivity {
    /// Full direction-predictor lookups (all component arrays read).
    pub dir_lookups: u32,
    /// PPD Scenario-2 gated direction lookups: the access is stopped
    /// after the bitlines, spending only the pre-mux energy.
    pub dir_partial_lookups: u32,
    /// Commit-time direction-predictor updates.
    pub dir_updates: u32,
    /// Full BTB lookups.
    pub btb_lookups: u32,
    /// PPD Scenario-2 gated BTB lookups (pre-mux energy only).
    pub btb_partial_lookups: u32,
    /// BTB updates (taken-branch target installs).
    pub btb_updates: u32,
    /// Return-address-stack pushes/pops.
    pub ras_ops: u32,
    /// PPD reads (one per active fetch cycle when a PPD is present).
    pub ppd_lookups: u32,
    /// PPD refills (with pre-decode bits, on I-cache fill).
    pub ppd_updates: u32,
}

impl BpredActivity {
    /// An idle cycle (nothing accessed).
    #[must_use]
    pub fn idle() -> Self {
        BpredActivity::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let a = Activity::default();
        assert_eq!(a.icache, 0);
        assert_eq!(a.clock_64ths, 0);
        let b = BpredActivity::idle();
        assert_eq!(b.dir_lookups, 0);
        assert_eq!(b, BpredActivity::default());
    }
}
