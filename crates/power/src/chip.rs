//! Chip-wide per-cycle power accounting and the energy report.

use bw_arrays::TechParams;

use crate::activity::{Activity, BpredActivity};
use crate::bpred::BpredPower;
use crate::units::{Unit, UnitBudget, CC3_IDLE_FRACTION};

/// Accumulates per-unit energy cycle by cycle.
///
/// # Examples
///
/// ```
/// use bw_power::{Activity, BpredActivity, BpredOptions, BpredPower, ChipPower, Unit};
/// use bw_predictors::PredictorConfig;
/// use bw_arrays::TechParams;
///
/// let tech = TechParams::default();
/// let bpred = BpredPower::new(
///     &PredictorConfig::bimodal(4096).build().storages(),
///     &tech,
///     BpredOptions::default(),
/// );
/// let mut chip = ChipPower::new(&tech, bpred);
/// chip.tick(&Activity::default(), &BpredActivity::idle());
/// let report = chip.report();
/// assert_eq!(report.cycles, 1);
/// assert!(report.avg_power_w() > 0.0); // cc3 idle floor
/// ```
#[derive(Clone, Debug)]
pub struct ChipPower {
    budget: UnitBudget,
    bpred: BpredPower,
    cycle_s: f64,
    energy_j: [f64; 12],
    cycles: u64,
}

impl ChipPower {
    /// A chip model with the default Alpha-21264-like unit budget.
    #[must_use]
    pub fn new(tech: &TechParams, bpred: BpredPower) -> Self {
        Self::with_budget(tech, bpred, UnitBudget::default())
    }

    /// A chip model with an explicit unit budget.
    #[must_use]
    pub fn with_budget(tech: &TechParams, bpred: BpredPower, budget: UnitBudget) -> Self {
        ChipPower {
            budget,
            bpred,
            cycle_s: tech.cycle_s(),
            energy_j: [0.0; 12],
            cycles: 0,
        }
    }

    /// The predictor power model in use.
    #[must_use]
    pub fn bpred(&self) -> &BpredPower {
        &self.bpred
    }

    /// Accounts one cycle of activity.
    pub fn tick(&mut self, act: &Activity, bact: &BpredActivity) {
        self.cycles += 1;
        let frac = |used: u32, unit: Unit| -> f64 {
            let ports = self.budget.ports[unit.index()].max(1);
            (f64::from(used) / f64::from(ports)).min(1.0)
        };
        let uses: [(Unit, f64); 11] = [
            (Unit::Rename, frac(act.rename, Unit::Rename)),
            (Unit::Window, frac(act.window, Unit::Window)),
            (Unit::Lsq, frac(act.lsq, Unit::Lsq)),
            (Unit::Regfile, frac(act.regfile, Unit::Regfile)),
            (Unit::Icache, frac(act.icache, Unit::Icache)),
            (Unit::Dcache, frac(act.dcache, Unit::Dcache)),
            (Unit::Dcache2, frac(act.dcache2, Unit::Dcache2)),
            (Unit::Ialu, frac(act.ialu, Unit::Ialu)),
            (Unit::Falu, frac(act.falu, Unit::Falu)),
            (Unit::ResultBus, frac(act.resultbus, Unit::ResultBus)),
            (Unit::Clock, (f64::from(act.clock_64ths) / 64.0).min(1.0)),
        ];
        for (unit, activity) in uses {
            let max_e = self.budget.max_power_w[unit.index()] * self.cycle_s;
            self.energy_j[unit.index()] +=
                max_e * (CC3_IDLE_FRACTION + (1.0 - CC3_IDLE_FRACTION) * activity);
        }
        self.energy_j[Unit::Bpred.index()] += self.bpred.cycle_energy_j(bact);
    }

    /// The report so far.
    #[must_use]
    pub fn report(&self) -> EnergyReport {
        EnergyReport {
            energy_j: self.energy_j,
            cycles: self.cycles,
            cycle_s: self.cycle_s,
        }
    }
}

/// Per-unit energy totals over a run, with the paper's metrics
/// (Section 2.3): average instantaneous power, energy, and
/// energy-delay product.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyReport {
    /// Joules per unit, indexed by [`Unit::index`].
    pub energy_j: [f64; 12],
    /// Cycles simulated.
    pub cycles: u64,
    /// Seconds per cycle.
    pub cycle_s: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.energy_j.iter().sum()
    }

    /// Energy attributed to the branch-prediction structures.
    #[must_use]
    pub fn bpred_energy_j(&self) -> f64 {
        self.energy_j[Unit::Bpred.index()]
    }

    /// Execution time in seconds.
    #[must_use]
    pub fn time_s(&self) -> f64 {
        self.cycles as f64 * self.cycle_s
    }

    /// Average instantaneous power over the run, watts.
    #[must_use]
    pub fn avg_power_w(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_energy_j() / self.time_s()
        }
    }

    /// Average predictor power, watts.
    #[must_use]
    pub fn bpred_power_w(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bpred_energy_j() / self.time_s()
        }
    }

    /// Energy-delay product, joule-seconds.
    #[must_use]
    pub fn energy_delay(&self) -> f64 {
        self.total_energy_j() * self.time_s()
    }

    /// Energy of one unit.
    #[must_use]
    pub fn unit_energy_j(&self, unit: Unit) -> f64 {
        self.energy_j[unit.index()]
    }
}

impl ChipPower {
    /// Total energy accumulated so far (convenience).
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.report().total_energy_j()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpred::BpredOptions;
    use bw_predictors::PredictorConfig;

    fn chip() -> ChipPower {
        let tech = TechParams::default();
        let bpred = BpredPower::new(
            &PredictorConfig::gshare(16 * 1024, 12).build().storages(),
            &tech,
            BpredOptions::default(),
        );
        ChipPower::new(&tech, bpred)
    }

    fn busy_activity() -> (Activity, BpredActivity) {
        (
            Activity {
                rename: 4,
                window: 10,
                lsq: 2,
                regfile: 8,
                icache: 1,
                dcache: 2,
                dcache2: 0,
                ialu: 4,
                falu: 1,
                resultbus: 5,
                clock_64ths: 56,
            },
            BpredActivity {
                dir_lookups: 1,
                btb_lookups: 1,
                dir_updates: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn busy_cycles_cost_more_than_idle() {
        let mut idle = chip();
        idle.tick(&Activity::default(), &BpredActivity::idle());
        let mut busy = chip();
        let (a, b) = busy_activity();
        busy.tick(&a, &b);
        assert!(busy.total_energy_j() > idle.total_energy_j() * 2.0);
    }

    #[test]
    fn average_power_is_paperlike_when_busy() {
        // Figure 7b: overall power roughly 29–43 W.
        let mut c = chip();
        let (a, b) = busy_activity();
        for _ in 0..10_000 {
            c.tick(&a, &b);
        }
        let w = c.report().avg_power_w();
        assert!((20.0..55.0).contains(&w), "busy chip power {w} W");
    }

    #[test]
    fn idle_power_is_ten_percentish() {
        let mut c = chip();
        for _ in 0..10_000 {
            c.tick(&Activity::default(), &BpredActivity::idle());
        }
        let w = c.report().avg_power_w();
        assert!((2.0..8.0).contains(&w), "idle chip power {w} W");
    }

    #[test]
    fn report_metrics_are_consistent() {
        let mut c = chip();
        let (a, b) = busy_activity();
        for _ in 0..1000 {
            c.tick(&a, &b);
        }
        let r = c.report();
        assert_eq!(r.cycles, 1000);
        let expect_time = 1000.0 / 1.2e9;
        assert!((r.time_s() - expect_time).abs() < 1e-12);
        assert!((r.energy_delay() - r.total_energy_j() * r.time_s()).abs() < 1e-18);
        assert!(r.bpred_energy_j() > 0.0);
        assert!(r.bpred_energy_j() < r.total_energy_j());
    }

    #[test]
    fn bpred_share_is_around_ten_percent_when_busy() {
        let mut c = chip();
        let (a, b) = busy_activity();
        for _ in 0..10_000 {
            c.tick(&a, &b);
        }
        let r = c.report();
        let share = r.bpred_energy_j() / r.total_energy_j();
        assert!(
            (0.04..0.25).contains(&share),
            "predictor share {share} out of the paper's ~10% band"
        );
    }

    #[test]
    fn empty_report_is_zero() {
        let r = chip().report();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.avg_power_w(), 0.0);
        assert_eq!(r.total_energy_j(), 0.0);
    }
}
