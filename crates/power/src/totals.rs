//! Aggregate predictor activity over a whole run, and post-hoc energy
//! evaluation.
//!
//! Banking, the old-vs-new array model, and the two PPD timing
//! scenarios change only *per-access energies*, never the cycle-level
//! activity. Recording aggregate access counts therefore lets one
//! timing simulation be re-priced under any [`BpredOptions`]
//! combination — which is exactly how the paper's Figures 2, 12/13 and
//! 16/17 compare configurations.

use crate::activity::BpredActivity;
use crate::bpred::{BpredOptions, BpredPower, PpdScenario};
use crate::units::CC3_IDLE_FRACTION;

/// Summed branch-prediction activity over a run.
///
/// `dir_gated`/`btb_gated` count fetch-active cycles in which a PPD
/// *would* suppress the lookup; on a machine without a PPD those cycles
/// performed full lookups. This split is what makes post-hoc PPD
/// pricing possible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BpredTotals {
    /// Cycles simulated.
    pub cycles: u64,
    /// Fetch cycles with a full direction-predictor lookup.
    pub dir_lookups: u64,
    /// Fetch cycles whose direction lookup a PPD suppresses.
    pub dir_gated: u64,
    /// Commit-time direction-predictor updates.
    pub dir_updates: u64,
    /// Fetch cycles with a full BTB lookup.
    pub btb_lookups: u64,
    /// Fetch cycles whose BTB lookup a PPD suppresses.
    pub btb_gated: u64,
    /// BTB updates.
    pub btb_updates: u64,
    /// RAS pushes/pops.
    pub ras_ops: u64,
    /// PPD reads (fetch-active cycles on a PPD machine).
    pub ppd_lookups: u64,
    /// PPD refills.
    pub ppd_updates: u64,
}

impl BpredTotals {
    /// Accumulates one cycle of activity.
    ///
    /// `dir_gated_now`/`btb_gated_now` flag whether this cycle's
    /// lookups were PPD-gated (derived from the machine's statistics
    /// rather than the activity struct, which drops Scenario-1 gated
    /// lookups entirely).
    pub fn add_cycle(&mut self, act: &BpredActivity, dir_gated_now: u64, btb_gated_now: u64) {
        self.cycles += 1;
        self.dir_lookups += u64::from(act.dir_lookups);
        self.dir_gated += dir_gated_now;
        self.dir_updates += u64::from(act.dir_updates);
        self.btb_lookups += u64::from(act.btb_lookups);
        self.btb_gated += btb_gated_now;
        self.btb_updates += u64::from(act.btb_updates);
        self.ras_ops += u64::from(act.ras_ops);
        self.ppd_lookups += u64::from(act.ppd_lookups);
        self.ppd_updates += u64::from(act.ppd_updates);
    }
}

impl BpredPower {
    /// Total predictor energy (joules) for a run's aggregate activity,
    /// priced under *this* model's options.
    ///
    /// The same [`BpredTotals`] can be re-priced under different
    /// [`BpredOptions`] by building another [`BpredPower`]:
    ///
    /// * `ppd: None` — gated lookups are charged as full lookups (the
    ///   machine without a PPD performs them), and the PPD's own
    ///   accesses cost nothing.
    /// * `ppd: Some(One)` — gated lookups are free; PPD accesses are
    ///   charged.
    /// * `ppd: Some(Two)` — gated lookups cost their pre-mux energy;
    ///   PPD accesses are charged.
    #[must_use]
    pub fn energy_for_totals(&self, t: &BpredTotals) -> f64 {
        let (dir_full, dir_partial, btb_full, btb_partial, ppd_reads, ppd_writes) =
            match self.options().ppd {
                None => (
                    t.dir_lookups + t.dir_gated,
                    0,
                    t.btb_lookups + t.btb_gated,
                    0,
                    0,
                    0,
                ),
                Some(PpdScenario::One) => (
                    t.dir_lookups,
                    0,
                    t.btb_lookups,
                    0,
                    t.ppd_lookups,
                    t.ppd_updates,
                ),
                Some(PpdScenario::Two) => (
                    t.dir_lookups,
                    t.dir_gated,
                    t.btb_lookups,
                    t.btb_gated,
                    t.ppd_lookups,
                    t.ppd_updates,
                ),
            };
        let active = dir_full as f64 * self.dir_lookup_energy_j()
            + dir_partial as f64 * self.dir_partial_energy_j()
            + t.dir_updates as f64 * self.dir_update_energy_j()
            + btb_full as f64 * self.btb_lookup_energy_j()
            + btb_partial as f64 * self.btb_partial_energy_j()
            + t.btb_updates as f64 * self.btb_update_energy_j()
            + t.ras_ops as f64 * self.ras_op_energy_j()
            + ppd_reads as f64 * self.ppd_lookup_energy_j()
            + ppd_writes as f64 * self.ppd_update_energy_j();
        CC3_IDLE_FRACTION * t.cycles as f64 * self.max_cycle_energy_j()
            + (1.0 - CC3_IDLE_FRACTION) * active
    }

    /// Re-prices a run under different options, keeping this model's
    /// storages.
    ///
    /// `options` must describe the same predictor structures (the PPD
    /// array is added or dropped automatically).
    #[must_use]
    pub fn repriced(&self, options: BpredOptions) -> BpredPower {
        BpredPower::new(&self.storages(), &self.tech(), options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::BpredActivity;
    use bw_arrays::{ModelKind, TechParams};
    use bw_predictors::PredictorConfig;

    fn model(options: BpredOptions) -> BpredPower {
        BpredPower::new(
            &PredictorConfig::gas(32 * 1024, 8).build().storages(),
            &TechParams::default(),
            options,
        )
    }

    fn sample_totals() -> BpredTotals {
        BpredTotals {
            cycles: 10_000,
            dir_lookups: 5_000,
            dir_gated: 3_000,
            dir_updates: 700,
            btb_lookups: 6_000,
            btb_gated: 2_000,
            btb_updates: 500,
            ras_ops: 300,
            ppd_lookups: 8_000,
            ppd_updates: 40,
        }
    }

    #[test]
    fn totals_accumulate_per_cycle() {
        let mut t = BpredTotals::default();
        let act = BpredActivity {
            dir_lookups: 1,
            btb_lookups: 1,
            ..Default::default()
        };
        t.add_cycle(&act, 0, 0);
        t.add_cycle(&BpredActivity::idle(), 1, 1);
        assert_eq!(t.cycles, 2);
        assert_eq!(t.dir_lookups, 1);
        assert_eq!(t.dir_gated, 1);
        assert_eq!(t.btb_gated, 1);
    }

    #[test]
    fn scenario_ordering_base_ge_s2_ge_s1() {
        let t = sample_totals();
        let base = model(BpredOptions::default()).energy_for_totals(&t);
        let s1 = model(BpredOptions {
            ppd: Some(PpdScenario::One),
            ..Default::default()
        })
        .energy_for_totals(&t);
        let s2 = model(BpredOptions {
            ppd: Some(PpdScenario::Two),
            ..Default::default()
        })
        .energy_for_totals(&t);
        assert!(
            s1 < s2,
            "scenario 1 saves more than scenario 2 ({s1} !< {s2})"
        );
        assert!(s2 < base, "scenario 2 still saves vs base ({s2} !< {base})");
    }

    #[test]
    fn banked_repricing_saves_energy() {
        let t = sample_totals();
        let flat = model(BpredOptions::default());
        let banked = flat.repriced(BpredOptions {
            banked: true,
            ..Default::default()
        });
        assert!(banked.energy_for_totals(&t) < flat.energy_for_totals(&t));
    }

    #[test]
    fn old_model_repricing_is_cheaper() {
        let t = sample_totals();
        let new = model(BpredOptions::default());
        let old = new.repriced(BpredOptions {
            kind: ModelKind::Wattch102,
            ..Default::default()
        });
        assert!(old.energy_for_totals(&t) < new.energy_for_totals(&t));
    }
}
