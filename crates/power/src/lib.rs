//! Wattch-style chip-wide power accounting for the `branchwatt`
//! simulator.
//!
//! Follows the structure of the Wattch 1.02 model the paper extends:
//! per-unit maximum powers derived from capacitance estimates, scaled
//! each cycle by activity under the non-ideal aggressive clock-gating
//! style ("cc3") — power scales linearly with port/unit usage, and
//! inactive units still dissipate 10 % of their maximum power.
//!
//! The branch-prediction structures get a finer-grained model
//! ([`BpredPower`]): per-array read/write/partial-access energies from
//! [`bw_arrays`], with switches for the paper's three Section-4
//! techniques — banking, the PPD (both timing scenarios), and the
//! old-vs-new array model comparison of Figure 2.
//!
//! # Examples
//!
//! ```
//! use bw_power::{Activity, BpredActivity, BpredOptions, BpredPower, ChipPower};
//! use bw_predictors::{DirectionPredictor, PredictorConfig};
//! use bw_arrays::TechParams;
//!
//! let tech = TechParams::default();
//! let pred = PredictorConfig::gshare(16 * 1024, 12).build();
//! let bpred = BpredPower::new(&pred.storages(), &tech, BpredOptions::default());
//! let mut chip = ChipPower::new(&tech, bpred);
//!
//! // One active fetch cycle: predictor + BTB looked up, I-cache read.
//! let mut act = Activity::default();
//! act.icache = 1;
//! let mut bact = BpredActivity::default();
//! bact.dir_lookups = 1;
//! bact.btb_lookups = 1;
//! chip.tick(&act, &bact);
//! assert!(chip.total_energy_j() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
#[cfg(feature = "audit")]
pub mod audit;
mod bpred;
mod chip;
mod totals;
mod units;

pub use activity::{Activity, BpredActivity};
pub use bpred::{BpredOptions, BpredPower, PpdScenario};
pub use chip::{ChipPower, EnergyReport};
pub use totals::BpredTotals;
pub use units::{Unit, UnitBudget, CC3_IDLE_FRACTION};
