//! Criterion benches for the SRAM array power/timing models.

use bw_arrays::{ArrayModel, ArraySpec, BankedArrayModel, ModelKind, TechParams};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_array_models(c: &mut Criterion) {
    let tech = TechParams::default();
    let mut g = c.benchmark_group("arrays");

    g.bench_function("squarify_16k_pht", |b| {
        let spec = ArraySpec::untagged(16 * 1024, 2);
        b.iter(|| {
            black_box(ArrayModel::new(
                black_box(spec),
                &tech,
                ModelKind::WithColumnDecoders,
            ))
        });
    });

    g.bench_function("squarify_btb", |b| {
        let spec = ArraySpec::tagged(2048, 30, 2, 21);
        b.iter(|| {
            black_box(ArrayModel::new(
                black_box(spec),
                &tech,
                ModelKind::WithColumnDecoders,
            ))
        });
    });

    g.bench_function("banked_64kbit", |b| {
        let spec = ArraySpec::untagged(32 * 1024, 2);
        b.iter(|| {
            black_box(BankedArrayModel::new(
                black_box(spec),
                &tech,
                ModelKind::WithColumnDecoders,
            ))
        });
    });

    g.bench_function("energy_breakdown_read", |b| {
        let m = ArrayModel::new(
            ArraySpec::untagged(16 * 1024, 2),
            &tech,
            ModelKind::WithColumnDecoders,
        );
        b.iter(|| black_box(m.energy_per_access().total()));
    });

    g.finish();
}

criterion_group!(benches, bench_array_models);
criterion_main!(benches);
