//! Daemon throughput bench: an in-process `bw-server` is driven by
//! concurrent loopback clients, measuring cold cells/s (every cell
//! simulated) and warm-cache req/s (every cell answered from the
//! shared run cache) across client counts — written to
//! `BENCH_server.json` at the repo root.
//!
//! A third phase measures durability: a daemon is killed mid-sweep and
//! relaunched over the same cache, and the time for a token-bearing
//! client to resume and drain the interrupted sweep is written to
//! `BENCH_daemon_recovery.json` (resume latency, recovered cells/s).
//!
//! Follows the vendored criterion shim's conventions: measurement only
//! happens when the harness receives `--bench` (as `cargo bench`
//! passes); under `cargo test` it registers and exits so test runs
//! stay fast. `BW_BENCH_QUICK=1` shrinks budgets and sample counts for
//! CI smoke runs.

use std::path::Path;
use std::time::Instant;

/// The PR this tree corresponds to; stamped into `BENCH_server.json`
/// and its cross-PR history so regressions are attributable.
const PR: u32 = 10;

use bw_core::fsutil;
use bw_server::{CellSpec, CellStatus, Client, Journal, JournalRecord, Server, ServerConfig};

struct Budget {
    mode: &'static str,
    warm_insts: u64,
    measure_insts: u64,
    cold_cells: u64,
    warm_reqs: u32,
    recovery_cells: u64,
}

impl Budget {
    fn from_env() -> Self {
        if std::env::var("BW_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty()) {
            Budget {
                mode: "quick",
                warm_insts: 2_000,
                measure_insts: 1_000,
                cold_cells: 8,
                warm_reqs: 4,
                recovery_cells: 12,
            }
        } else {
            Budget {
                mode: "full",
                warm_insts: 20_000,
                measure_insts: 10_000,
                cold_cells: 24,
                warm_reqs: 16,
                recovery_cells: 32,
            }
        }
    }
}

/// The cell grid: one benchmark, one predictor, `n` distinct seeds —
/// `n` distinct run keys, all cheap, all deterministic.
fn grid(n: u64, budget: &Budget) -> Vec<CellSpec> {
    (0..n)
        .map(|seed| CellSpec {
            benchmark: "gzip".to_string(),
            predictor: "Bim_4k".to_string(),
            warmup_insts: budget.warm_insts,
            measure_insts: budget.measure_insts,
            seed: 1 + seed,
            banked: false,
        })
        .collect()
}

/// Submits `specs` once and asserts every cell came back healthy.
fn run_grid(client: &mut Client, req: u64, specs: &[CellSpec]) {
    let replies = client.run_cells(req, specs).expect("loopback request");
    assert_eq!(replies.len(), specs.len());
    for reply in &replies {
        assert!(
            matches!(reply.status, CellStatus::Ok(_)),
            "bench cell must succeed: {:?}",
            reply.status
        );
    }
}

/// `clients` concurrent connections each issuing `reqs` full-grid
/// requests; returns total wall nanoseconds.
fn drive(addr: &str, specs: &[CellSpec], clients: u32, reqs: u32) -> f64 {
    let t = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let specs = specs.to_vec();
            let addr = addr.to_string();
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for r in 0..reqs {
                    run_grid(&mut client, u64::from(c * reqs + r + 1), &specs);
                }
                client.bye();
            });
        }
    });
    t.elapsed().as_nanos() as f64
}

/// One cross-PR history row: daemon throughput measured at a given PR
/// (full mode only, so rows stay comparable).
#[derive(Clone, Copy)]
struct HistoryRow {
    pr: u32,
    cold_cells_per_s: f64,
    warm_req_per_s: f64,
}

/// Extracts a numeric field from a flat JSON object fragment. The
/// bench both writes and reads this file with the same hand-rolled
/// format, so a substring scan is exact for our own output.
fn field_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Loads the history array from a previously written
/// `BENCH_server.json`.
fn load_history(prev: &str) -> Vec<HistoryRow> {
    let mut rows = Vec::new();
    if let Some(start) = prev.find("\"history\": [") {
        let body = &prev[start..];
        let end = body.find(']').unwrap_or(body.len());
        for obj in body[..end].split('{').skip(1) {
            if let (Some(pr), Some(cold), Some(warm)) = (
                field_num(obj, "pr"),
                field_num(obj, "cold_cells_per_s"),
                field_num(obj, "warm_req_per_s"),
            ) {
                rows.push(HistoryRow {
                    pr: pr as u32,
                    cold_cells_per_s: cold,
                    warm_req_per_s: warm,
                });
            }
        }
    }
    rows
}

/// Appends (or, on a re-run of the same PR, replaces) this tree's row.
/// Quick-mode numbers are not comparable across PRs and never enter
/// the history.
fn update_history(mut rows: Vec<HistoryRow>, mode: &str, cold: f64, warm: f64) -> Vec<HistoryRow> {
    if mode == "full" {
        rows.retain(|r| r.pr != PR);
        rows.push(HistoryRow {
            pr: PR,
            cold_cells_per_s: cold,
            warm_req_per_s: warm,
        });
    }
    rows.sort_by_key(|r| r.pr);
    rows
}

fn history_json(rows: &[HistoryRow]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"pr\": {}, \"cold_cells_per_s\": {:.1}, \"warm_req_per_s\": {:.1} }}",
                r.pr, r.cold_cells_per_s, r.warm_req_per_s
            )
        })
        .collect();
    format!("[\n{}\n  ]", body.join(",\n"))
}

/// Kill-and-resume phase: a fresh daemon takes a sweep, dies mid-way,
/// and a relaunch over the same cache finishes it for a resuming
/// client. Returns `(recovered cells/s, resume latency ms, cells
/// executed before the kill)`.
fn recovery_phase(budget: &Budget) -> (f64, f64, u64) {
    let cache_dir = std::env::temp_dir().join(format!("bw-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cfg = ServerConfig {
        cache_dir: Some(cache_dir.clone()),
        workers: 2,
        ..ServerConfig::default()
    };
    let specs = grid(budget.recovery_cells, budget);

    let first = Server::launch("127.0.0.1:0", cfg.clone()).expect("bind loopback");
    let client = Client::connect(first.addr()).expect("connect");
    let token = client.session().to_string();
    {
        let mut client = client;
        client.submit(1, &specs).expect("submit the sweep");
        // Let roughly a third of the sweep land, then take the daemon
        // down mid-flight — no acks were sent, no cells drained.
        while first.executed() < budget.recovery_cells / 3 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        first.shutdown();
    }
    // The journal's Done records are the exact pre-kill completion
    // count (executed() races the in-flight cells draining during
    // shutdown).
    let executed_before = Journal::in_dir(&cache_dir)
        .replay()
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Done { .. }))
        .count() as u64;

    let restart = Instant::now();
    let second = Server::launch("127.0.0.1:0", cfg).expect("relaunch over the same cache");
    let mut client = Client::connect_with(second.addr(), Some(&token)).expect("reconnect");
    assert!(
        client.resumed(),
        "the daemon must recognize the session token"
    );
    let reqs = client.resume().expect("resume");
    let resume_latency_ms = restart.elapsed().as_nanos() as f64 / 1e6;
    let mut recovered = 0u64;
    for req in reqs {
        let replies = client.collect_request(req).expect("drain resumed request");
        for reply in &replies {
            assert!(
                matches!(reply.status, CellStatus::Ok(_)),
                "recovered cell must succeed: {:?}",
                reply.status
            );
        }
        recovered += replies.len() as u64;
        client
            .ack(req, &replies.iter().map(|r| r.cell).collect::<Vec<_>>())
            .expect("ack");
    }
    let recovered_cells_per_s = recovered as f64 / (restart.elapsed().as_nanos() as f64 / 1e9);
    assert_eq!(recovered, budget.recovery_cells, "every cell redelivered");
    assert!(
        executed_before + second.executed() >= budget.recovery_cells,
        "journal replay plus restart work must cover the sweep"
    );
    client.bye();
    second.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
    (recovered_cells_per_s, resume_latency_ms, executed_before)
}

/// One cross-PR history row for the recovery file.
#[derive(Clone, Copy)]
struct RecoveryRow {
    pr: u32,
    recovered_cells_per_s: f64,
    resume_latency_ms: f64,
}

fn load_recovery_history(prev: &str) -> Vec<RecoveryRow> {
    let mut rows = Vec::new();
    if let Some(start) = prev.find("\"history\": [") {
        let body = &prev[start..];
        let end = body.find(']').unwrap_or(body.len());
        for obj in body[..end].split('{').skip(1) {
            if let (Some(pr), Some(rate), Some(latency)) = (
                field_num(obj, "pr"),
                field_num(obj, "recovered_cells_per_s"),
                field_num(obj, "resume_latency_ms"),
            ) {
                rows.push(RecoveryRow {
                    pr: pr as u32,
                    recovered_cells_per_s: rate,
                    resume_latency_ms: latency,
                });
            }
        }
    }
    rows
}

fn recovery_history_json(rows: &[RecoveryRow]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"pr\": {}, \"recovered_cells_per_s\": {:.1}, \
                 \"resume_latency_ms\": {:.2} }}",
                r.pr, r.recovered_cells_per_s, r.resume_latency_ms
            )
        })
        .collect();
    format!("[\n{}\n  ]", body.join(",\n"))
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        println!("server: skipped (run via `cargo bench` to measure)");
        return;
    }
    let budget = Budget::from_env();

    let cache_dir = std::env::temp_dir().join(format!("bw-bench-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = Server::launch(
        "127.0.0.1:0",
        ServerConfig {
            cache_dir: Some(cache_dir.clone()),
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr().to_string();
    let specs = grid(budget.cold_cells, &budget);

    // Cold phase: one client, every cell actually simulated (the
    // daemon's two workers overlap simulation with framing/dispatch).
    let cold_ns = drive(&addr, &specs, 1, 1);
    assert_eq!(
        server.executed(),
        budget.cold_cells,
        "cold phase must execute every cell exactly once"
    );
    let cold_cells_per_s = budget.cold_cells as f64 / (cold_ns / 1e9);
    println!(
        "server/cold: {:.3} ms for {} cells ({cold_cells_per_s:.1} cells/s, workers 2)",
        cold_ns / 1e6,
        budget.cold_cells
    );

    // Warm phase: the same grid over and over — every cell answered
    // from the shared cache, so this measures protocol + admission +
    // cache-probe throughput across client counts.
    let mut warm_at_4 = 0.0;
    for clients in [1u32, 2, 4] {
        let ns = drive(&addr, &specs, clients, budget.warm_reqs);
        let total_reqs = f64::from(clients * budget.warm_reqs);
        let req_per_s = total_reqs / (ns / 1e9);
        let cells_per_s = req_per_s * budget.cold_cells as f64;
        if clients == 4 {
            warm_at_4 = req_per_s;
        }
        println!(
            "server/warm x{clients}: {:.3} ms for {total_reqs:.0} reqs \
             ({req_per_s:.1} req/s, {cells_per_s:.0} cached cells/s)",
            ns / 1e6
        );
    }
    assert_eq!(
        server.executed(),
        budget.cold_cells,
        "warm phase must be served entirely from the cache"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root")
        .to_path_buf();
    let path = root.join("BENCH_server.json");
    let prev = std::fs::read_to_string(&path).unwrap_or_default();
    let history = update_history(
        load_history(&prev),
        budget.mode,
        cold_cells_per_s,
        warm_at_4,
    );

    let json = format!(
        "{{\n  \"bench\": \"server\",\n  \"pr\": {pr},\n  \"mode\": \"{mode}\",\n  \
         \"workload\": \"gzip\",\n  \"predictor\": \"Bim_4k\",\n  \
         \"warm_insts\": {warm},\n  \"measure_insts\": {measure},\n  \
         \"cold_cells\": {cells},\n  \"warm_reqs_per_client\": {reqs},\n  \
         \"cold_cells_per_s\": {cold:.1},\n  \"warm_req_per_s_x4\": {warm4:.1},\n  \
         \"history\": {history}\n}}\n",
        pr = PR,
        mode = budget.mode,
        warm = budget.warm_insts,
        measure = budget.measure_insts,
        cells = budget.cold_cells,
        reqs = budget.warm_reqs,
        cold = cold_cells_per_s,
        warm4 = warm_at_4,
        history = history_json(&history),
    );
    fsutil::atomic_write(&path, json.as_bytes()).expect("write BENCH_server.json");
    println!("server: wrote {}", path.display());

    // Durability phase: kill a daemon mid-sweep, relaunch it over the
    // same cache, and time the resume for a token-bearing client.
    let (recovered_cells_per_s, resume_latency_ms, executed_before) = recovery_phase(&budget);
    println!(
        "server/recovery: {} cells, {executed_before} done pre-kill, \
         resume in {resume_latency_ms:.2} ms, {recovered_cells_per_s:.1} recovered cells/s",
        budget.recovery_cells
    );

    let recovery_path = root.join("BENCH_daemon_recovery.json");
    let prev = std::fs::read_to_string(&recovery_path).unwrap_or_default();
    let mut rows = load_recovery_history(&prev);
    if budget.mode == "full" {
        rows.retain(|r| r.pr != PR);
        rows.push(RecoveryRow {
            pr: PR,
            recovered_cells_per_s,
            resume_latency_ms,
        });
    }
    rows.sort_by_key(|r| r.pr);
    let json = format!(
        "{{\n  \"bench\": \"daemon_recovery\",\n  \"pr\": {pr},\n  \"mode\": \"{mode}\",\n  \
         \"workload\": \"gzip\",\n  \"predictor\": \"Bim_4k\",\n  \
         \"recovery_cells\": {cells},\n  \"executed_before_kill\": {before},\n  \
         \"resume_latency_ms\": {latency:.2},\n  \"recovered_cells_per_s\": {rate:.1},\n  \
         \"history\": {history}\n}}\n",
        pr = PR,
        mode = budget.mode,
        cells = budget.recovery_cells,
        before = executed_before,
        latency = resume_latency_ms,
        rate = recovered_cells_per_s,
        history = recovery_history_json(&rows),
    );
    fsutil::atomic_write(&recovery_path, json.as_bytes())
        .expect("write BENCH_daemon_recovery.json");
    println!("server: wrote {}", recovery_path.display());
}
