//! Criterion benches for the branch-prediction structures: the
//! per-branch cost of each predictor organization's lookup/commit
//! protocol, plus BTB and RAS operations.

use bw_core::zoo::NamedPredictor;
use bw_predictors::{Btb, PredictorConfig, Ras};
use bw_types::{Addr, Outcome};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Drives `n` synthetic branches through the full protocol.
fn drive(cfg: PredictorConfig, n: u64) -> u64 {
    let mut p = cfg.build();
    let mut correct = 0;
    for i in 0..n {
        let pc = Addr(0x1000 + (i % 509) * 8);
        let actual = Outcome::from_bool(i % 3 != 0);
        let bw_predictors::LookupResult { pred, ckpt } = p.lookup(pc);
        if pred.outcome != actual {
            p.repair(&ckpt);
            p.spec_push(pc, actual);
        } else {
            correct += 1;
        }
        p.commit(pc, actual, &pred);
    }
    correct
}

/// Drives the same synthetic branches through the batched warm-path
/// surface, 256 per batch.
fn drive_batched(cfg: PredictorConfig, n: u64) -> u64 {
    let mut p = cfg.build();
    let mut batch = bw_predictors::BranchBatch::with_capacity(256);
    let mut preds = Vec::with_capacity(256);
    let mut correct = 0;
    let mut i = 0u64;
    while i < n {
        batch.clear();
        preds.clear();
        for _ in 0..256.min(n - i) {
            batch.push(Addr(0x1000 + (i % 509) * 8), Outcome::from_bool(i % 3 != 0));
            i += 1;
        }
        p.lookup_batch(&batch, &mut preds);
        correct += batch
            .iter()
            .zip(&preds)
            .filter(|((_, actual), pred)| pred.outcome == *actual)
            .count() as u64;
        p.commit_batch(&batch, &preds);
    }
    correct
}

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictors");
    for p in [
        NamedPredictor::Bim4k,
        NamedPredictor::Gshare16k12,
        NamedPredictor::PAs4k16k8,
        NamedPredictor::Hybrid1,
    ] {
        g.bench_function(format!("protocol_{}", p.label()), |b| {
            b.iter(|| black_box(drive(p.config(), black_box(1000))));
        });
        g.bench_function(format!("batched_{}", p.label()), |b| {
            b.iter(|| black_box(drive_batched(p.config(), black_box(1000))));
        });
    }

    g.bench_function("btb_lookup_update", |b| {
        let mut btb = Btb::new(2048, 2);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pc = Addr((i % 4096) * 4);
            if btb.lookup(pc).is_none() {
                btb.update(pc, Addr(0x8000));
            }
        });
    });

    g.bench_function("ras_push_pop", |b| {
        let mut ras = Ras::new(32);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ras.push(Addr(i * 4));
            black_box(ras.pop())
        });
    });

    g.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
