//! Criterion benches over the experiment machinery itself: smoke-scale
//! versions of the analytic tables (instant) and of one simulation
//! cell, so `cargo bench` exercises every layer the paper's figures
//! are built from.

use bw_core::experiments::{fig03_squarification, fig11_banked_timing, table3};
use bw_core::zoo::NamedPredictor;
use bw_core::{simulate, RunPlan, Runner, SimConfig};
use bw_workload::benchmark;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");

    g.bench_function("table3", |b| b.iter(|| black_box(table3())));
    g.bench_function("fig03_squarification", |b| {
        b.iter(|| black_box(fig03_squarification()));
    });
    g.bench_function("fig11_banked_timing", |b| {
        b.iter(|| black_box(fig11_banked_timing()));
    });

    g.sample_size(10);
    g.bench_function("simulate_one_cell_smoke", |b| {
        let model = benchmark("vortex").expect("built-in");
        let cfg = SimConfig::builder()
            .warmup_insts(50_000)
            .measure_insts(20_000)
            .seed(3)
            .build()
            .expect("valid config");
        b.iter(|| black_box(simulate(model, NamedPredictor::Bim4k.config(), &cfg).ipc()));
    });

    // Supervision overhead: the same tiny plan executed strict vs
    // supervised (panic isolation + cancellation polling). The two
    // should be within noise of each other (<2% is the budget).
    let model = benchmark("vortex").expect("built-in");
    let cfg = SimConfig::builder()
        .warmup_insts(50_000)
        .measure_insts(20_000)
        .seed(3)
        .build()
        .expect("valid config");
    let plan = {
        let mut plan = RunPlan::new();
        plan.add(model, NamedPredictor::Bim4k.config(), &cfg);
        plan
    };
    let runner = Runner::serial();
    g.bench_function("run_one_cell_strict", |b| {
        b.iter(|| black_box(runner.run(&plan, |_| {}).len()));
    });
    g.bench_function("run_one_cell_supervised", |b| {
        b.iter(|| black_box(runner.run_supervised(&plan, |_| {}).len()));
    });

    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
