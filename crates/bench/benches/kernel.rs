//! The hot-path kernel bench: ns/inst of the trace-replay warm path,
//! scalar protocol over the streaming reader versus batched protocol
//! over the decoded bitcode reader, plus one-cell strict-vs-supervised
//! overhead — written to `BENCH_kernel.json` at the repo root.
//!
//! Follows the vendored criterion shim's conventions: measurement only
//! happens when the harness receives `--bench` (as `cargo bench`
//! passes); under `cargo test` it registers and exits so test runs
//! stay fast. `BW_BENCH_QUICK=1` shrinks budgets and sample counts for
//! CI smoke runs.

use std::path::Path;
use std::time::Instant;

/// The PR this tree corresponds to; stamped into `BENCH_kernel.json`
/// and its cross-PR history so regressions are attributable.
const PR: u32 = 7;

use bw_arrays::{ModelKind, TechParams};
use bw_core::trace::{DecodedTrace, Trace, TraceReader};
use bw_core::zoo::NamedPredictor;
use bw_core::{fsutil, record_trace, RunPlan, Runner, SimConfig};
use bw_uarch::{Machine, SimStats, UarchConfig};
use bw_workload::benchmark;

struct Budget {
    mode: &'static str,
    warm_insts: u64,
    measure_insts: u64,
    samples: u32,
}

impl Budget {
    fn from_env() -> Self {
        if std::env::var("BW_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty()) {
            Budget {
                mode: "quick",
                warm_insts: 60_000,
                measure_insts: 20_000,
                samples: 2,
            }
        } else {
            Budget {
                mode: "full",
                warm_insts: 300_000,
                measure_insts: 100_000,
                samples: 5,
            }
        }
    }
}

/// Times `f` `samples` times and returns the minimum elapsed
/// nanoseconds (the least-noise estimate) along with the last result.
fn time_min<T>(samples: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..samples {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_nanos() as f64);
        out = Some(r);
    }
    (best, out.unwrap())
}

/// The scalar replay kernel: streaming reader + per-branch scalar
/// predictor protocol (the pre-batching shape of the warm path).
/// Returns the stats after an *untimed* measured run, for the
/// byte-identity check.
fn replay_scalar(trace: &Trace, cfg: &UarchConfig, warm: u64, measure: u64) -> (f64, SimStats) {
    let mut m = Machine::with_source(
        cfg,
        trace.program(),
        TraceReader::new(trace),
        trace.meta().working_set,
        NamedPredictor::Gshare16k12.config(),
        ModelKind::WithColumnDecoders,
        false,
        &TechParams::default(),
    );
    let t = Instant::now();
    m.warmup_scalar(warm);
    let ns = t.elapsed().as_nanos() as f64;
    m.run(measure);
    (ns, *m.stats())
}

/// The batched replay kernel: decoded bitcode reader + batched
/// predictor protocol (the post-batching shape of the warm path).
fn replay_batched(
    decoded: &DecodedTrace<'_>,
    cfg: &UarchConfig,
    warm: u64,
    measure: u64,
) -> (f64, SimStats) {
    let mut m = Machine::with_source(
        cfg,
        decoded.trace().program(),
        decoded.reader(),
        decoded.trace().meta().working_set,
        NamedPredictor::Gshare16k12.config(),
        ModelKind::WithColumnDecoders,
        false,
        &TechParams::default(),
    );
    let t = Instant::now();
    m.warmup(warm);
    let ns = t.elapsed().as_nanos() as f64;
    m.run(measure);
    (ns, *m.stats())
}

/// Runs `f` `samples` times; returns the minimum warm-phase
/// nanoseconds and the last run's stats.
fn sample_replay(samples: u32, mut f: impl FnMut() -> (f64, SimStats)) -> (f64, SimStats) {
    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..samples {
        let (ns, s) = f();
        best = best.min(ns);
        stats = Some(s);
    }
    (best, stats.unwrap())
}

/// One cross-PR history row: the replay-kernel ns/inst pair measured
/// at a given PR (full mode only, so rows stay comparable).
#[derive(Clone, Copy)]
struct HistoryRow {
    pr: u32,
    scalar: f64,
    batched: f64,
}

/// Extracts a numeric field from a flat JSON object fragment. The
/// bench both writes and reads this file with the same hand-rolled
/// format, so a substring scan is exact for our own output.
fn field_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Loads the history array from a previously written
/// `BENCH_kernel.json`. Files from before history tracking carry no
/// array; their top-level replay numbers become the seed row (that
/// file was written at PR 5, where the batched kernel landed).
fn load_history(prev: &str) -> Vec<HistoryRow> {
    let mut rows = Vec::new();
    if let Some(start) = prev.find("\"history\": [") {
        let body = &prev[start..];
        let end = body.find(']').unwrap_or(body.len());
        for obj in body[..end].split('{').skip(1) {
            if let (Some(pr), Some(scalar), Some(batched)) = (
                field_num(obj, "pr"),
                field_num(obj, "scalar_ns_per_inst"),
                field_num(obj, "batched_ns_per_inst"),
            ) {
                rows.push(HistoryRow {
                    pr: pr as u32,
                    scalar,
                    batched,
                });
            }
        }
    } else if let Some(replay) = prev.find("\"replay\"") {
        let body = &prev[replay..];
        if let (Some(scalar), Some(batched)) = (
            field_num(body, "scalar_ns_per_inst"),
            field_num(body, "batched_ns_per_inst"),
        ) {
            rows.push(HistoryRow {
                pr: 5,
                scalar,
                batched,
            });
        }
    }
    rows
}

/// Appends (or, on a re-run of the same PR, replaces) this tree's row.
/// Quick-mode numbers are not comparable across PRs and never enter
/// the history.
fn update_history(
    mut rows: Vec<HistoryRow>,
    mode: &str,
    scalar: f64,
    batched: f64,
) -> Vec<HistoryRow> {
    if mode == "full" {
        rows.retain(|r| r.pr != PR);
        rows.push(HistoryRow {
            pr: PR,
            scalar,
            batched,
        });
    }
    rows.sort_by_key(|r| r.pr);
    rows
}

fn history_json(rows: &[HistoryRow]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"pr\": {}, \"scalar_ns_per_inst\": {:.2}, \"batched_ns_per_inst\": {:.2} }}",
                r.pr, r.scalar, r.batched
            )
        })
        .collect();
    format!("[\n{}\n  ]", body.join(",\n"))
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        println!("kernel: skipped (run via `cargo bench` to measure)");
        return;
    }
    let budget = Budget::from_env();
    let model = benchmark("gzip").expect("built-in");
    let sim_cfg = SimConfig::builder()
        .warmup_insts(budget.warm_insts)
        .measure_insts(budget.measure_insts)
        .seed(1)
        .build()
        .expect("valid config");
    let trace = record_trace(model, &sim_cfg);
    let uarch = UarchConfig::alpha21264_like();
    let cell_insts = budget.warm_insts + budget.measure_insts;

    // One-time bitcode decode, measured on its own (the cost `trace
    // info` reports; one decode is shared by every reader over it).
    let (decode_ns, decoded) = time_min(budget.samples, || DecodedTrace::new(&trace));

    // The replay kernel proper: the trace-style warm phase, which is
    // where replay spends its instructions (per-record stream decode +
    // per-branch predictor protocol). The detailed measured run after
    // it is untimed here — its cycle-level pipeline model dwarfs the
    // replay kernel and is unchanged by this work — but its stats feed
    // the byte-identity check.
    let (scalar_ns, scalar_stats) = sample_replay(budget.samples, || {
        replay_scalar(&trace, &uarch, budget.warm_insts, budget.measure_insts)
    });
    let (batched_ns, batched_stats) = sample_replay(budget.samples, || {
        replay_batched(&decoded, &uarch, budget.warm_insts, budget.measure_insts)
    });

    // Byte-identity: same committed stats from both kernel shapes.
    let batch_identical = scalar_stats == batched_stats;
    assert!(
        batch_identical,
        "batched replay diverged from scalar: {scalar_stats:?} vs {batched_stats:?}"
    );

    // Sanitizer: the batched replay path stays invariant-clean.
    let (audited, violations) =
        bw_core::simulate_trace_audited(&trace, NamedPredictor::Gshare16k12.config(), &sim_cfg)
            .expect("record_trace sized the trace for sim_cfg");
    let audit_clean = violations.is_empty();
    assert!(audit_clean, "audit violations on replay: {violations:?}");
    assert_eq!(
        audited.stats, batched_stats,
        "audited replay diverged from the bench kernel"
    );

    // One-cell experiment, strict vs supervised execution.
    let plan = {
        let mut plan = RunPlan::new();
        plan.add(model, NamedPredictor::Bim4k.config(), &sim_cfg);
        plan
    };
    let runner = Runner::serial();
    let (strict_ns, _) = time_min(budget.samples, || runner.run(&plan, |_| {}).len());
    let (supervised_ns, _) = time_min(budget.samples, || {
        runner.run_supervised(&plan, |_| {}).len()
    });

    let per = |ns: f64| ns / budget.warm_insts as f64;
    let per_cell = |ns: f64| ns / cell_insts as f64;
    let speedup = scalar_ns / batched_ns;
    println!(
        "kernel/replay_scalar: {:.3} ms, {:.1} ns/inst ({} insts)",
        scalar_ns / 1e6,
        per(scalar_ns),
        budget.warm_insts
    );
    println!(
        "kernel/replay_batched: {:.3} ms, {:.1} ns/inst ({} insts)",
        batched_ns / 1e6,
        per(batched_ns),
        budget.warm_insts
    );
    println!(
        "kernel/decode_bitcode: {:.3} ms ({:.2} ns/inst one-time)",
        decode_ns / 1e6,
        decode_ns / trace.meta().insts as f64
    );
    println!("kernel/speedup: {speedup:.2}x (batch_identical {batch_identical}, audit_clean {audit_clean})");
    println!(
        "kernel/one_cell: strict {:.1} ns/inst, supervised {:.1} ns/inst ({cell_insts} insts)",
        per_cell(strict_ns),
        per_cell(supervised_ns)
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root")
        .to_path_buf();
    let path = root.join("BENCH_kernel.json");

    // Cross-PR history: carry forward rows from the previous report
    // (or seed from its top-level numbers) and append this run's.
    let prev = std::fs::read_to_string(&path).unwrap_or_default();
    let history = update_history(
        load_history(&prev),
        budget.mode,
        per(scalar_ns),
        per(batched_ns),
    );

    let json = format!(
        "{{\n  \"bench\": \"kernel\",\n  \"pr\": {pr},\n  \"mode\": \"{mode}\",\n  \
         \"workload\": \"gzip\",\n  \
         \"predictor\": \"{pred}\",\n  \"warm_insts\": {warm},\n  \"measure_insts\": {measure},\n  \
         \"trace_insts\": {trace_insts},\n  \"decoded_bytes\": {decoded_bytes},\n  \"replay\": {{\n    \
         \"scalar_ns_per_inst\": {scalar:.2},\n    \"batched_ns_per_inst\": {batched:.2},\n    \
         \"speedup\": {speedup:.3},\n    \"decode_ms_one_time\": {decode_ms:.3},\n    \
         \"batch_identical\": {batch_identical},\n    \"audit_clean\": {audit_clean}\n  }},\n  \
         \"one_cell\": {{\n    \"strict_ns_per_inst\": {strict:.2},\n    \
         \"supervised_ns_per_inst\": {supervised:.2}\n  }},\n  \
         \"history\": {history}\n}}\n",
        pr = PR,
        mode = budget.mode,
        pred = NamedPredictor::Gshare16k12.label(),
        warm = budget.warm_insts,
        measure = budget.measure_insts,
        trace_insts = trace.meta().insts,
        decoded_bytes = decoded.decoded_bytes(),
        scalar = per(scalar_ns),
        batched = per(batched_ns),
        decode_ms = decode_ns / 1e6,
        strict = per_cell(strict_ns),
        supervised = per_cell(supervised_ns),
        history = history_json(&history),
    );
    fsutil::atomic_write(&path, json.as_bytes()).expect("write BENCH_kernel.json");
    println!("kernel: wrote {}", path.display());
}
