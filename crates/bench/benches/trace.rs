//! Criterion benches for the trace subsystem: stepping a replayed
//! recording versus generating the workload live (replay skips all
//! behaviour-automaton and hash-draw work, so it should win), plus
//! the codec's encode/decode throughput.

use bw_core::trace::{record_model, DecodedTrace, TraceReader};
use bw_workload::{benchmark, InstSource};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_trace(c: &mut Criterion) {
    let model = benchmark("gzip").expect("built-in");
    let program = model.build_program(1);
    const INSTS: u64 = 100_000;
    let trace = record_model(model, &program, 1, INSTS);

    let mut g = c.benchmark_group("trace");
    g.sample_size(20);
    g.throughput(Throughput::Elements(INSTS));

    g.bench_function("generate_100k_insts", |b| {
        b.iter(|| {
            let mut t = model.thread(&program, 1);
            let mut ctis = 0u64;
            for _ in 0..INSTS {
                ctis += u64::from(t.step().control.is_some());
            }
            black_box(ctis)
        });
    });

    g.bench_function("replay_100k_insts", |b| {
        b.iter(|| {
            let mut r = TraceReader::new(&trace);
            let mut ctis = 0u64;
            for _ in 0..INSTS {
                ctis += u64::from(r.step().control.is_some());
            }
            black_box(ctis)
        });
    });

    g.bench_function("replay_decoded_100k_insts", |b| {
        let decoded = DecodedTrace::new(&trace);
        b.iter(|| {
            let mut r = decoded.reader();
            let mut ctis = 0u64;
            for _ in 0..INSTS {
                ctis += u64::from(r.step().control.is_some());
            }
            black_box(ctis)
        });
    });

    g.bench_function("decode_to_bitcode", |b| {
        b.iter(|| black_box(DecodedTrace::new(&trace).decoded_bytes()));
    });

    g.bench_function("record_100k_insts", |b| {
        b.iter(|| black_box(record_model(model, &program, 1, INSTS).digest()));
    });

    let bytes = trace.to_bytes();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("decode_bwt", |b| {
        b.iter(|| black_box(bw_core::trace::Trace::from_bytes(&bytes).unwrap().digest()));
    });
    g.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
