//! Criterion benches for the cycle-level machine: simulation
//! throughput of the full pipeline (the cost of regenerating the
//! paper's figures scales directly with these numbers).

use bw_core::zoo::NamedPredictor;
use bw_uarch::{Machine, UarchConfig};
use bw_workload::benchmark;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_machine(c: &mut Criterion) {
    let model = benchmark("gzip").expect("built-in");
    let program = model.build_program(1);
    let cfg = UarchConfig::alpha21264_like();

    let mut g = c.benchmark_group("machine");
    g.sample_size(10);

    const DETAIL_INSTS: u64 = 20_000;
    g.throughput(Throughput::Elements(DETAIL_INSTS));
    g.bench_function("detailed_20k_insts", |b| {
        b.iter(|| {
            let mut m = Machine::new(
                &cfg,
                &program,
                model,
                1,
                NamedPredictor::Gshare16k12.config(),
            );
            m.warmup(10_000);
            black_box(m.run(DETAIL_INSTS))
        });
    });

    const WARM_INSTS: u64 = 100_000;
    g.throughput(Throughput::Elements(WARM_INSTS));
    g.bench_function("trace_warmup_100k_insts", |b| {
        b.iter(|| {
            let mut m = Machine::new(
                &cfg,
                &program,
                model,
                1,
                NamedPredictor::Gshare16k12.config(),
            );
            m.warmup(WARM_INSTS);
            black_box(m.stats().cycles)
        });
    });

    g.bench_function("workload_generation_gcc", |b| {
        let gcc = benchmark("gcc").expect("built-in");
        b.iter(|| black_box(gcc.build_program(black_box(7))));
    });

    g.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
