//! Remote sweep mode: render figures from a shared `bw-server` daemon.
//!
//! With `--server ADDR` a sweep binary submits the same fourteen
//! predictor × benchmark cells a local supervised sweep would plan —
//! built with [`CellSpec::for_run`] in the exact `FIGURE_ORDER` ×
//! suite order of
//! [`sweep_rows_supervised`](bw_core::experiments::sweep_rows_supervised)
//! — and renders from the per-cell results the daemon streams back.
//! Because the daemon keys work by [`RunKey`](bw_core::RunKey) digest
//! over a shared cache, any number of figure binaries pointed at the
//! same daemon execute each cell at most once between them.
//!
//! Degradation mirrors the local supervised path: refused or failed
//! cells are reported on stderr, every healthy row still renders, and
//! the caller exits nonzero.

use std::time::Duration;

use bw_core::experiments::SweepRow;
use bw_core::zoo::NamedPredictor;
use bw_core::{RunResult, SimConfig};
use bw_server::{CellSpec, CellStatus, Client, ClientError, RetryPolicy, ServerMsg};
use bw_workload::BenchmarkModel;
use serde::Deserialize;

/// One cell the daemon did not complete: its figure label, a short
/// class (`refused:quota`, `failed:timed-out`, ...), and the daemon's
/// detail line.
#[derive(Clone, Debug)]
pub struct RemoteFailure {
    /// `predictor / benchmark`, as the figure binaries label cells.
    pub label: String,
    /// Failure class, `refused:<reason>` or `failed:<outcome>`.
    pub class: String,
    /// The daemon's human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for RemoteFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.label, self.class, self.detail)
    }
}

/// What a remote sweep produced: the healthy rows plus a record of
/// every cell that came back refused, failed, or undecodable.
pub struct RemoteSweep {
    /// Completed cells (a strict subset of the plan when degraded).
    pub rows: Vec<SweepRow>,
    /// Cells the daemon refused or failed.
    pub failures: Vec<RemoteFailure>,
    /// Total cells submitted.
    pub planned: usize,
    /// Submit attempts made (1 = no backpressure retries needed).
    pub attempts: u32,
    /// Cell resubmissions across all backoff retries.
    pub retried: usize,
}

impl RemoteSweep {
    /// `true` when any planned cell did not come back healthy.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty()
    }

    /// One-line outcome summary in the supervised-sweep style, with
    /// the attempt count whenever backpressure forced retries.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut line = format!(
            "remote sweep: {} of {} cells completed, {} refused/failed",
            self.rows.len(),
            self.planned,
            self.failures.len()
        );
        if self.attempts > 1 {
            use std::fmt::Write;
            let _ = write!(
                line,
                " after {} attempts ({} cell resubmissions)",
                self.attempts, self.retried
            );
        }
        line
    }
}

/// Runs the figure sweep over `suite` on the daemon at `addr`,
/// streaming per-cell progress through `progress`.
///
/// # Errors
///
/// [`ClientError`] when the daemon is unreachable, the handshake
/// fails, or the connection breaks mid-stream. Per-cell refusals and
/// failures are not errors — they land in
/// [`RemoteSweep::failures`].
pub fn remote_sweep_rows(
    addr: &str,
    suite: &[&'static BenchmarkModel],
    cfg: &SimConfig,
    mut progress: impl FnMut(&str) + Send,
) -> Result<RemoteSweep, ClientError> {
    // The exact plan order of `sweep_rows_supervised`, so the daemon
    // and a local run agree cell-for-cell on keys and labels.
    let mut cells = Vec::with_capacity(NamedPredictor::FIGURE_ORDER.len() * suite.len());
    let mut specs = Vec::with_capacity(cells.capacity());
    for p in NamedPredictor::FIGURE_ORDER {
        for m in suite {
            cells.push((p, format!("{} / {}", p.label(), m.name)));
            specs.push(CellSpec::for_run(m.name, p, cfg));
        }
    }

    let mut client = Client::connect(addr)?;
    const REQ: u64 = 1;
    client.submit(REQ, &specs)?;

    let mut statuses: Vec<Option<CellStatus>> = vec![None; cells.len()];
    let mut seen = 0usize;
    let mut received = Vec::new();
    loop {
        match client.next_msg()? {
            Some(ServerMsg::Cell(reply)) if reply.req == REQ => {
                let idx = reply.cell as usize;
                if idx < statuses.len() && statuses[idx].is_none() {
                    seen += 1;
                    received.push(reply.cell);
                    if let Some((_, label)) = cells.get(idx) {
                        progress(&format!("{label} ({seen}/{} remote)", cells.len()));
                    }
                    statuses[idx] = Some(reply.status);
                }
            }
            Some(ServerMsg::Done { req, .. }) if req == REQ => break,
            Some(ServerMsg::Error { message }) => return Err(ClientError::Server(message)),
            Some(_) => {}
            None => {
                return Err(ClientError::Wire(bw_server::WireError::Closed(
                    "daemon closed the stream before Done".to_string(),
                )))
            }
        }
    }
    client.ack(REQ, &received)?;

    // Backpressure retries: resubmit only the retryably-refused cells
    // (quota / queue-full) under derived request ids, backing off with
    // the deterministic-jitter schedule so parallel figure binaries
    // desynchronize instead of stampeding the daemon in step.
    let policy = RetryPolicy::default();
    let (mut attempts, mut retried) = (1_u32, 0_usize);
    for attempt in 1..policy.attempts {
        let pending: Vec<usize> = statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(s, Some(CellStatus::Refused { reason, .. }) if reason.is_retryable())
            })
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(policy.delay_ms(attempt, REQ)));
        let retry_specs: Vec<CellSpec> = pending.iter().map(|&i| specs[i].clone()).collect();
        let sub_req = REQ ^ (u64::from(attempt) << 48) ^ 0x5261_7472_7900_0000;
        client.submit(sub_req, &retry_specs)?;
        let replies = client.collect_request(sub_req)?;
        client.ack(sub_req, &replies.iter().map(|r| r.cell).collect::<Vec<_>>())?;
        for sub in replies {
            if let Some(&orig) = pending.get(sub.cell as usize) {
                if let Some((_, label)) = cells.get(orig) {
                    progress(&format!("{label} (retry {attempt})"));
                }
                statuses[orig] = Some(sub.status);
            }
        }
        attempts = attempt + 1;
        retried += pending.len();
    }
    client.bye();

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for ((predictor, label), status) in cells.into_iter().zip(statuses) {
        match status {
            Some(CellStatus::Ok(value)) => match RunResult::from_value(&value) {
                Ok(run) => rows.push(SweepRow { predictor, run }),
                Err(e) => failures.push(RemoteFailure {
                    label,
                    class: "failed:undecodable".to_string(),
                    detail: e.0,
                }),
            },
            Some(CellStatus::Refused { reason, detail }) => failures.push(RemoteFailure {
                label,
                class: format!("refused:{}", reason.as_str()),
                detail,
            }),
            Some(CellStatus::Failed { outcome, detail }) => failures.push(RemoteFailure {
                label,
                class: format!("failed:{outcome}"),
                detail,
            }),
            None => failures.push(RemoteFailure {
                label,
                class: "failed:missing".to_string(),
                detail: "the daemon finished the request without this cell".to_string(),
            }),
        }
    }
    Ok(RemoteSweep {
        rows,
        failures,
        planned: specs.len(),
        attempts,
        retried,
    })
}
