//! Shared harness for the per-table/per-figure experiment binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--quick` — reduced instruction budget (smoke-test scale).
//! * `--paper` — the full budget (default): 3M-instruction warmup and
//!   1M measured instructions per simulation.
//! * `--warmup N` / `--measure N` — explicit budgets.
//! * `--seed N` — workload seed.
//! * `--csv FILE` — also write machine-readable rows.
//! * `--trace FILE` — sweep binaries only: replay a recorded `.bwt`
//!   trace (see the `trace` binary) instead of generating the
//!   workload; the suite argument is ignored and the figure renders
//!   the trace's workload.
//! * `--jobs N` — worker threads (default: all available cores).
//! * `--cache-dir DIR` — run-cache location (default `results/cache`).
//! * `--no-cache` — simulate everything, ignore and don't write the
//!   cache.
//! * `--audit` — run every simulation under the runtime sanitizer
//!   (invariant checks per cycle/commit/recovery; implies no cache)
//!   and exit nonzero on any violation. Results are identical to an
//!   unaudited run — the sanitizer is observation-only.
//! * `--keep-going` (default) — sweep binaries run supervised: a
//!   panicking, hanging, or corrupted run becomes a failure record,
//!   every healthy row still renders (missing cells show `-`), the
//!   failure summary goes to stderr, and the exit status is nonzero.
//! * `--fail-fast` — the pre-supervision behavior: the first failing
//!   run unwinds the process.
//! * `--run-timeout SECS` — per-attempt wall-clock watchdog for
//!   supervised runs (default: none).
//! * `--retries N` — attempts per supervised run (default 2, i.e. one
//!   retry with backoff).
//! * `--server ADDR` — sweep binaries only: submit the cells to a
//!   shared `bw-server` daemon (`host:port` or `unix:/path`) instead
//!   of simulating locally, and render from the streamed results. The
//!   daemon deduplicates in-flight cells across every connected
//!   client and serves its shared run cache. Incompatible with
//!   `--trace` and `--audit` (those are local-execution modes).
//!
//! Builds with the `fault-inject` feature additionally honour the
//! `BW_FAULT` environment variable (`kind[:param][xN]@target` clauses,
//! `;`-separated — see `bw-fault`) for deterministic chaos testing.
//!
//! Run them as `cargo run --release -p bw-bench --bin fig05 -- [flags]`.
//!
//! The harness owns all the plumbing the binaries used to copy-paste:
//! argument parsing, [`Runner`] construction (worker pool + persistent
//! [`RunCache`]), the stderr progress line, and CSV output. A sweep
//! binary is one [`sweep_figure_main`] call; a study binary is one
//! [`study_main`] call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod remote;

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

use bw_core::experiments::{
    sweep_rows, sweep_rows_supervised, trace_sweep_rows, trace_sweep_rows_supervised,
    SupervisedSweep, SweepRow,
};
use bw_core::trace::Trace;
use bw_core::{RunCache, Runner, SimConfig, Supervision};
use bw_workload::BenchmarkModel;

/// Parsed command line: simulation budget, runner controls, and an
/// optional CSV output path.
#[derive(Clone, Debug)]
pub struct Cli {
    /// The simulation configuration.
    pub cfg: SimConfig,
    /// Where to also write machine-readable rows, if requested.
    pub csv: Option<PathBuf>,
    /// Explicit worker count (`--jobs N`); `None` sizes to the
    /// machine.
    pub jobs: Option<usize>,
    /// Disable the persistent run cache (`--no-cache`).
    pub no_cache: bool,
    /// Cache directory override (`--cache-dir DIR`).
    pub cache_dir: Option<PathBuf>,
    /// Run under the runtime sanitizer (`--audit`).
    pub audit: bool,
    /// Replay this recorded `.bwt` trace instead of generating
    /// workloads (`--trace FILE`; sweep binaries).
    pub trace: Option<PathBuf>,
    /// Let the first failing run unwind the process (`--fail-fast`)
    /// instead of the default supervised keep-going sweep.
    pub fail_fast: bool,
    /// Per-attempt wall-clock watchdog in seconds (`--run-timeout`).
    pub run_timeout: Option<u64>,
    /// Attempts per supervised run (`--retries N` means N attempts).
    pub retries: Option<u32>,
    /// Run the sweep on a shared `bw-server` daemon at this address
    /// (`--server ADDR`; sweep binaries).
    pub server: Option<String>,
}

impl Cli {
    /// Parses the common flags from `std::env::args`.
    ///
    /// Exits the process (status 2, with a usage message) on malformed
    /// arguments.
    #[must_use]
    pub fn parse() -> Cli {
        arm_faults_from_env();
        Self::parse_from(std::env::args().skip(1).collect())
    }

    fn parse_from(args: Vec<String>) -> Cli {
        let mut cli = Cli {
            cfg: SimConfig::paper(0xb4a2),
            csv: None,
            jobs: None,
            no_cache: false,
            cache_dir: None,
            audit: false,
            trace: None,
            fail_fast: false,
            run_timeout: None,
            retries: None,
            server: None,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    cli.cfg.warmup_insts = 600_000;
                    cli.cfg.measure_insts = 200_000;
                }
                "--paper" => {
                    cli.cfg.warmup_insts = 3_000_000;
                    cli.cfg.measure_insts = 1_000_000;
                }
                "--warmup" => {
                    i += 1;
                    cli.cfg.warmup_insts = parse_num(&args, i, "--warmup");
                }
                "--measure" => {
                    i += 1;
                    cli.cfg.measure_insts = parse_num(&args, i, "--measure");
                }
                "--seed" => {
                    i += 1;
                    cli.cfg.seed = parse_num(&args, i, "--seed");
                }
                "--csv" => {
                    i += 1;
                    cli.csv = Some(PathBuf::from(parse_path(&args, i, "--csv")));
                }
                "--jobs" => {
                    i += 1;
                    cli.jobs = Some(parse_num(&args, i, "--jobs") as usize);
                }
                "--trace" => {
                    i += 1;
                    cli.trace = Some(PathBuf::from(parse_path(&args, i, "--trace")));
                }
                "--no-cache" => cli.no_cache = true,
                "--audit" => cli.audit = true,
                "--fail-fast" => cli.fail_fast = true,
                "--keep-going" => cli.fail_fast = false,
                "--run-timeout" => {
                    i += 1;
                    cli.run_timeout = Some(parse_num(&args, i, "--run-timeout"));
                }
                "--retries" => {
                    i += 1;
                    cli.retries = Some(parse_num(&args, i, "--retries") as u32);
                }
                "--cache-dir" => {
                    i += 1;
                    cli.cache_dir = Some(PathBuf::from(parse_path(&args, i, "--cache-dir")));
                }
                "--server" => {
                    i += 1;
                    cli.server = Some(parse_path(&args, i, "--server"));
                }
                other => bad_flag(&format!("unknown flag '{other}'")),
            }
            i += 1;
        }
        cli
    }

    /// The [`Supervision`] policy these flags describe (defaults plus
    /// `--run-timeout` / `--retries`).
    #[must_use]
    pub fn supervision(&self) -> Supervision {
        let mut sup = Supervision::default();
        if let Some(secs) = self.run_timeout {
            sup = sup.with_timeout(Duration::from_secs(secs));
        }
        if let Some(n) = self.retries {
            sup = sup.with_max_attempts(n.max(1));
        }
        sup
    }

    /// Builds the [`Runner`] these flags describe: a worker pool sized
    /// by `--jobs` (default: available cores) over the persistent run
    /// cache, unless `--no-cache`, with the supervision policy from
    /// [`Cli::supervision`] attached.
    #[must_use]
    pub fn runner(&self) -> Runner {
        let runner = match self.jobs {
            Some(n) => Runner::with_jobs(n),
            None => Runner::parallel(),
        }
        .supervised(self.supervision());
        // `--audit` implies no cache: every run must actually execute
        // under the sanitizer. The runner enforces this too; skipping
        // the attach here just keeps the intent visible.
        if self.audit {
            return runner.audited();
        }
        if self.no_cache {
            runner
        } else {
            let dir = self.cache_dir.clone().unwrap_or_else(RunCache::default_dir);
            runner.cached(RunCache::new(dir))
        }
    }

    /// Reports the audit outcome after a run: prints a summary line
    /// (and the first violations) to stderr, then exits nonzero if any
    /// invariant failed. No-op when `--audit` was not passed.
    pub fn finish_audit(&self, runner: &Runner) {
        if !self.audit {
            return;
        }
        let violations = runner.take_violations();
        if violations.is_empty() {
            eprintln!("  audit: clean (all invariants held)");
            return;
        }
        for v in violations.iter().take(20) {
            eprintln!("  audit: {v}");
        }
        eprintln!("  audit: {} invariant violation(s)", violations.len());
        std::process::exit(1);
    }
}

fn bad_flag(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: [--quick|--paper] [--warmup N] [--measure N] [--seed N] \
         [--csv FILE] [--jobs N] [--no-cache] [--cache-dir DIR] [--audit] \
         [--trace FILE] [--keep-going|--fail-fast] [--run-timeout SECS] \
         [--retries N] [--server ADDR]"
    );
    std::process::exit(2);
}

/// Arms the process-wide fault plan from `BW_FAULT` / `BW_FAULT_SEED`
/// (fault-inject builds only; exits with status 2 on a malformed spec).
#[cfg(feature = "fault-inject")]
fn arm_faults_from_env() {
    match bw_fault::FaultPlan::from_env() {
        Ok(Some(plan)) => bw_fault::arm(plan),
        Ok(None) => {}
        Err(e) => {
            eprintln!("BW_FAULT: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(not(feature = "fault-inject"))]
fn arm_faults_from_env() {}

fn parse_num(args: &[String], i: usize, flag: &str) -> u64 {
    let Some(arg) = args.get(i) else {
        bad_flag(&format!("{flag} needs a number"));
    };
    match arg.replace('_', "").parse() {
        Ok(n) => n,
        Err(_) => bad_flag(&format!("{flag} needs a number, got '{arg}'")),
    }
}

fn parse_path(args: &[String], i: usize, flag: &str) -> String {
    match args.get(i) {
        Some(p) => p.clone(),
        None => bad_flag(&format!("{flag} needs a path")),
    }
}

/// Parses the common CLI flags (no `--csv` handling) into a
/// [`SimConfig`] — kept for binaries that only need a budget.
#[must_use]
pub fn config_from_args() -> SimConfig {
    Cli::parse().cfg
}

/// Writes CSV content atomically (stage + rename), logging the
/// destination.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_csv(path: &Path, content: &str) {
    bw_core::fsutil::atomic_write(path, content.as_bytes()).expect("failed to write CSV");
    eprintln!("  wrote {}", path.display());
}

/// A progress callback that keeps a single status line on stderr.
pub fn progress_line() -> impl FnMut(&str) + Send {
    |msg: &str| {
        eprint!("\r\x1b[2K  running: {msg}");
        let _ = std::io::stderr().flush();
    }
}

/// Ends the progress line.
pub fn progress_done() {
    eprintln!("\r\x1b[2K  done");
}

/// Loads the `--trace` file, exiting with a diagnostic on failure.
fn load_trace(path: &Path) -> std::sync::Arc<Trace> {
    match Trace::load(path) {
        Ok(t) => std::sync::Arc::new(t),
        Err(e) => {
            eprintln!("cannot load trace {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

/// The whole main function of a base-sweep figure binary: parse flags,
/// run (or re-load) the sweep over `suite` — or replay a `--trace`
/// recording in its place — write `csv` rows if requested, and print
/// `title` plus the rendered figure.
///
/// By default the sweep runs supervised (`--keep-going`): failed runs
/// become failure records, every healthy row still renders (renderers
/// show `-` for a missing cell), the failure summary goes to stderr
/// and the process exits 1. With `--fail-fast`, the first failing run
/// unwinds the process instead.
pub fn sweep_figure_main(
    title: &str,
    suite: &[&'static BenchmarkModel],
    csv: impl FnOnce(&[SweepRow]) -> String,
    render: impl FnOnce(&[SweepRow]) -> String,
) {
    let cli = Cli::parse();
    if let Some(addr) = &cli.server {
        if cli.trace.is_some() {
            bad_flag("--server and --trace are incompatible (trace replay is local)");
        }
        if cli.audit {
            bad_flag("--server and --audit are incompatible (the sanitizer is local)");
        }
        let sweep = match remote::remote_sweep_rows(addr, suite, &cli.cfg, progress_line()) {
            Ok(sweep) => sweep,
            Err(e) => {
                eprintln!("\nremote sweep via {addr}: {e}");
                std::process::exit(2);
            }
        };
        progress_done();
        if let Some(path) = &cli.csv {
            write_csv(path, &csv(&sweep.rows));
        }
        if !title.is_empty() {
            println!("{title}\n");
        }
        println!("{}", render(&sweep.rows));
        if sweep.is_degraded() {
            for f in &sweep.failures {
                eprintln!("  failed: {f}");
            }
            eprintln!("  {}", sweep.summary());
            std::process::exit(1);
        }
        return;
    }
    let runner = cli.runner();
    let (rows, set) = if cli.fail_fast {
        let rows = match &cli.trace {
            Some(path) => {
                let trace = load_trace(path);
                match trace_sweep_rows(&runner, &trace, &cli.cfg, progress_line()) {
                    Ok(rows) => rows,
                    Err(e) => {
                        eprintln!("\n{e}");
                        std::process::exit(2);
                    }
                }
            }
            None => sweep_rows(&runner, suite, &cli.cfg, progress_line()),
        };
        (rows, None)
    } else {
        let SupervisedSweep { rows, set } = match &cli.trace {
            Some(path) => {
                let trace = load_trace(path);
                match trace_sweep_rows_supervised(&runner, &trace, &cli.cfg, progress_line()) {
                    Ok(sweep) => sweep,
                    Err(e) => {
                        eprintln!("\n{e}");
                        std::process::exit(2);
                    }
                }
            }
            None => sweep_rows_supervised(&runner, suite, &cli.cfg, progress_line()),
        };
        (rows, Some(set))
    };
    progress_done();
    cli.finish_audit(&runner);
    if let Some(path) = &cli.csv {
        write_csv(path, &csv(&rows));
    }
    if !title.is_empty() {
        println!("{title}\n");
    }
    println!("{}", render(&rows));
    if let Some(set) = set {
        if set.is_degraded() {
            for f in set.failures() {
                eprintln!("  failed: {f}");
            }
            eprintln!("  {}", set.summary());
            std::process::exit(1);
        }
    }
}

/// What a study body hands back to [`study_main`].
pub struct StudyOut {
    /// The rendered text, printed to stdout.
    pub text: String,
    /// Machine-readable rows for `--csv`, if the study exports any.
    pub csv: Option<String>,
}

impl StudyOut {
    /// A text-only study result.
    #[must_use]
    pub fn text(text: String) -> Self {
        StudyOut { text, csv: None }
    }
}

/// The whole main function of a study binary: parse flags, hand the
/// body a [`Runner`] and a progress callback, then print (and
/// optionally CSV-export) what it returns.
pub fn study_main(run: impl FnOnce(&Runner, &Cli, &mut (dyn FnMut(&str) + Send)) -> StudyOut) {
    let cli = Cli::parse();
    let runner = cli.runner();
    let mut progress = progress_line();
    let out = run(&runner, &cli, &mut progress);
    progress_done();
    cli.finish_audit(&runner);
    if let Some(path) = &cli.csv {
        if let Some(rows) = &out.csv {
            write_csv(path, rows);
        } else {
            eprintln!("  (this study has no CSV export; --csv ignored)");
        }
    }
    println!("{}", out.text);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::parse_from(args.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn default_config_is_paper_scale() {
        let cli = parse(&[]);
        assert_eq!(cli.cfg.warmup_insts, 3_000_000);
        assert_eq!(cli.cfg.measure_insts, 1_000_000);
        assert!(cli.csv.is_none());
        assert!(cli.jobs.is_none());
        assert!(!cli.no_cache);
    }

    #[test]
    fn runner_flags_are_parsed() {
        let cli = parse(&[
            "--quick",
            "--jobs",
            "3",
            "--no-cache",
            "--cache-dir",
            "/tmp/bwcache",
            "--seed",
            "9",
        ]);
        assert_eq!(cli.cfg.warmup_insts, 600_000);
        assert_eq!(cli.cfg.seed, 9);
        assert_eq!(cli.jobs, Some(3));
        assert!(cli.no_cache);
        assert_eq!(
            cli.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/bwcache"))
        );
        assert_eq!(cli.runner().jobs(), 3);
    }

    #[test]
    fn supervision_flags_are_parsed() {
        let cli = parse(&["--fail-fast", "--run-timeout", "30", "--retries", "4"]);
        assert!(cli.fail_fast);
        assert_eq!(cli.run_timeout, Some(30));
        assert_eq!(cli.retries, Some(4));
        let sup = cli.supervision();
        assert_eq!(sup.run_timeout, Some(Duration::from_secs(30)));
        assert_eq!(sup.max_attempts, 4);
        // --keep-going (the default) undoes --fail-fast.
        assert!(!parse(&["--fail-fast", "--keep-going"]).fail_fast);
        assert!(!parse(&[]).fail_fast);
    }

    #[test]
    fn server_flag_is_parsed() {
        assert!(parse(&[]).server.is_none());
        assert_eq!(
            parse(&["--server", "127.0.0.1:7381"]).server.as_deref(),
            Some("127.0.0.1:7381")
        );
    }

    #[test]
    fn progress_helpers_do_not_panic() {
        let mut p = progress_line();
        p("x");
        progress_done();
    }
}
