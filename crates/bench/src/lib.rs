//! Shared plumbing for the per-table/per-figure experiment binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--quick` — reduced instruction budget (smoke-test scale).
//! * `--paper` — the full budget (default): 3M-instruction warmup and
//!   1M measured instructions per simulation.
//! * `--warmup N` / `--measure N` — explicit budgets.
//! * `--seed N` — workload seed.
//!
//! Run them as `cargo run --release -p bw-bench --bin fig05 -- [flags]`.

use std::io::Write;
use std::path::PathBuf;

use bw_core::SimConfig;

/// Parsed command line: simulation budget plus an optional CSV output
/// path (`--csv FILE`).
#[derive(Clone, Debug)]
pub struct Cli {
    /// The simulation configuration.
    pub cfg: SimConfig,
    /// Where to also write machine-readable rows, if requested.
    pub csv: Option<PathBuf>,
}

/// Parses the common CLI flags plus `--csv FILE`.
///
/// # Panics
///
/// Panics (with a usage message) on malformed arguments.
#[must_use]
pub fn cli_from_args() -> Cli {
    let mut csv = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--csv" {
            i += 1;
            csv = Some(PathBuf::from(
                args.get(i).expect("--csv needs a file path").clone(),
            ));
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    Cli {
        cfg: config_from(&rest),
        csv,
    }
}

/// Writes CSV content, logging the destination.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_csv(path: &PathBuf, content: &str) {
    std::fs::write(path, content).expect("failed to write CSV");
    eprintln!("  wrote {}", path.display());
}

/// Parses the common CLI flags into a [`SimConfig`].
///
/// # Panics
///
/// Panics (with a usage message) on malformed numeric arguments.
#[must_use]
pub fn config_from_args() -> SimConfig {
    let args: Vec<String> = std::env::args().skip(1).collect();
    config_from(&args)
}

fn config_from(args: &[String]) -> SimConfig {
    let mut cfg = SimConfig::paper(0xb4a2);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                cfg.warmup_insts = 600_000;
                cfg.measure_insts = 200_000;
            }
            "--paper" => {
                cfg.warmup_insts = 3_000_000;
                cfg.measure_insts = 1_000_000;
            }
            "--warmup" => {
                i += 1;
                cfg.warmup_insts = parse_num(args, i, "--warmup");
            }
            "--measure" => {
                i += 1;
                cfg.measure_insts = parse_num(args, i, "--measure");
            }
            "--seed" => {
                i += 1;
                cfg.seed = parse_num(args, i, "--seed");
            }
            other => {
                eprintln!("unknown flag '{other}'");
                eprintln!(
                    "usage: [--quick|--paper] [--warmup N] [--measure N] [--seed N] [--csv FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cfg
}

#[allow(clippy::ptr_arg)]
fn parse_num(args: &[String], i: usize, flag: &str) -> u64 {
    args.get(i)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
}

/// A progress callback that keeps a single status line on stderr.
pub fn progress_line() -> impl FnMut(&str) {
    |msg: &str| {
        eprint!("\r\x1b[2K  running: {msg}");
        let _ = std::io::stderr().flush();
    }
}

/// Ends the progress line.
pub fn progress_done() {
    eprintln!("\r\x1b[2K  done");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_scale() {
        // No args in the test harness beyond the binary name; the
        // function must not panic and must produce the paper budget.
        let cfg = SimConfig::paper(1);
        assert_eq!(cfg.warmup_insts, 3_000_000);
        assert_eq!(cfg.measure_insts, 1_000_000);
    }

    #[test]
    fn progress_helpers_do_not_panic() {
        let mut p = progress_line();
        p("x");
        progress_done();
    }
}
