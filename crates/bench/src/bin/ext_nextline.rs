//! Extension study: the separate BTB the paper models versus the real
//! Alpha 21264's integrated next-line predictor.

use bw_bench::StudyOut;
use bw_core::experiments::nextline_study;
use bw_workload::specint7;

fn main() {
    bw_bench::study_main(|runner, cli, progress| {
        StudyOut::text(nextline_study(runner, &specint7(), &cli.cfg, progress))
    });
}
