//! Extension study: the separate BTB the paper models versus the real
//! Alpha 21264's integrated next-line predictor.

use bw_bench::{config_from_args, progress_done, progress_line};
use bw_core::experiments::nextline_study;
use bw_workload::specint7;

fn main() {
    let cfg = config_from_args();
    let out = nextline_study(&specint7(), &cfg, progress_line());
    progress_done();
    println!("{out}");
}
