//! Regenerates Figure 3: squarification — PHT power and normalized
//! cycle times under the old and new organizations.

fn main() {
    println!("{}", bw_core::experiments::fig03_squarification());
}
