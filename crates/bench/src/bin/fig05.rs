//! Regenerates Figure 5: SPECint direction-prediction accuracy and IPC
//! for the paper's fourteen predictor organizations.

use bw_core::experiments::fig05_accuracy_ipc;
use bw_core::export::sweep_csv;
use bw_workload::specint;

fn main() {
    bw_bench::sweep_figure_main(
        "Figure 5 (SPECint2000)",
        &specint(),
        sweep_csv,
        fig05_accuracy_ipc,
    );
}
