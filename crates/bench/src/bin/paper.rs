//! Regenerates every table and figure of the paper in one run,
//! printing them in order. This is the binary behind EXPERIMENTS.md.
//!
//! All simulations go through one [`Runner`](bw_core::Runner): the
//! SPECint and SPECfp base sweeps are each executed once (deduplicated
//! by the run plan, cached across invocations) and shared by all the
//! figures derived from them.

use bw_bench::{progress_done, progress_line, Cli};
use bw_core::experiments::{
    fig02_model_comparison, fig03_squarification, fig05_accuracy_ipc, fig06_energy, fig07_power,
    fig11_banked_timing, fig12_13_banking, fig14_distances, fig16_fig17_render, fig19_render,
    gating_rows, ppd_rows, sweep_rows, table1, table2, table3,
};
use bw_workload::{all_benchmarks, specfp, specint, specint7};

fn main() {
    let cli = Cli::parse();
    let cfg = &cli.cfg;
    let runner = cli.runner();
    let trace_insts = (cfg.warmup_insts + cfg.measure_insts).max(2_000_000);

    println!("{}", table1());
    let models: Vec<_> = all_benchmarks().iter().collect();
    println!("{}", table2(&models, trace_insts, cfg.seed));

    println!("{}", fig03_squarification());

    eprintln!("SPECint base sweep (14 configurations x 10 benchmarks)...");
    let int_rows = sweep_rows(&runner, &specint(), cfg, progress_line());
    progress_done();
    println!("{}", fig02_model_comparison(&int_rows));
    println!("Figure 5 (SPECint2000)\n");
    println!("{}", fig05_accuracy_ipc(&int_rows));
    println!("Figure 6 (SPECint2000)\n");
    println!("{}", fig06_energy(&int_rows));
    println!("Figure 7 (SPECint2000)\n");
    println!("{}", fig07_power(&int_rows));

    eprintln!("SPECfp base sweep (14 configurations x 12 benchmarks)...");
    let fp_rows = sweep_rows(&runner, &specfp(), cfg, progress_line());
    progress_done();
    println!("Figure 8 (SPECfp2000)\n");
    println!("{}", fig05_accuracy_ipc(&fp_rows));
    println!("Figure 9 (SPECfp2000)\n");
    println!("{}", fig06_energy(&fp_rows));
    println!("Figure 10 (SPECfp2000)\n");
    println!("{}", fig07_power(&fp_rows));

    println!("{}", table3());
    println!("{}", fig11_banked_timing());

    eprintln!("Banking study (Section-4 subset)...");
    let subset_rows = sweep_rows(&runner, &specint7(), cfg, progress_line());
    progress_done();
    println!("{}", fig12_13_banking(&subset_rows));

    println!("{}", fig14_distances(&specint7(), trace_insts, cfg.seed));

    eprintln!("PPD study...");
    let ppd = ppd_rows(&runner, &specint7(), cfg, progress_line());
    progress_done();
    println!("{}", fig16_fig17_render(&ppd));

    eprintln!("Pipeline gating study...");
    let gating = gating_rows(&runner, &specint7(), cfg, progress_line());
    progress_done();
    println!("{}", fig19_render(&gating));
}
