//! Regenerates Table 1: the simulated processor configuration.

fn main() {
    println!("{}", bw_core::experiments::table1());
}
