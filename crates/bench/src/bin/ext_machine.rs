//! Extension study: sensitivity of the headline metrics to the
//! machine's other levers (window size, memory latency, pipeline
//! depth), for context around the predictor's lever.

use bw_bench::StudyOut;
use bw_core::experiments::machine_ablation;
use bw_workload::specint7;

fn main() {
    bw_bench::study_main(|runner, cli, progress| {
        StudyOut::text(machine_ablation(runner, &specint7(), &cli.cfg, progress))
    });
}
