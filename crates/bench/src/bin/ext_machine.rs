//! Extension study: sensitivity of the headline metrics to the
//! machine's other levers (window size, memory latency, pipeline
//! depth), for context around the predictor's lever.

use bw_bench::{config_from_args, progress_done, progress_line};
use bw_core::experiments::machine_ablation;
use bw_workload::specint7;

fn main() {
    let cfg = config_from_args();
    let out = machine_ablation(&specint7(), &cfg, progress_line());
    progress_done();
    println!("{out}");
}
