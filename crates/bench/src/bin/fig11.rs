//! Regenerates Figure 11: cycle time and power for a banked predictor.

fn main() {
    println!("{}", bw_core::experiments::fig11_banked_timing());
}
