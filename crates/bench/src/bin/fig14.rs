//! Regenerates Figure 14: average distance between conditional
//! branches and between control-flow instructions, for the Section-4
//! benchmark subset.

use bw_bench::config_from_args;
use bw_core::experiments::fig14_distances;
use bw_workload::specint7;

fn main() {
    let cfg = config_from_args();
    let insts = (cfg.warmup_insts + cfg.measure_insts).max(1_000_000);
    println!("{}", fig14_distances(&specint7(), insts, cfg.seed));
}
