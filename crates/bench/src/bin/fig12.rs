//! Regenerates Figures 12 and 13: percentage reductions in predictor
//! and overall power/energy/energy-delay from banking, over the
//! Section-4 SPECint subset.

use bw_core::experiments::fig12_13_banking;
use bw_core::export::banking_csv;
use bw_workload::specint7;

fn main() {
    bw_bench::sweep_figure_main("", &specint7(), banking_csv, fig12_13_banking);
}
