//! Regenerates Figures 12 and 13: percentage reductions in predictor
//! and overall power/energy/energy-delay from banking, over the
//! Section-4 SPECint subset.

use bw_bench::{cli_from_args, progress_done, progress_line, write_csv};
use bw_core::experiments::{base_sweep, fig12_13_banking};
use bw_workload::specint7;

fn main() {
    let cli = cli_from_args();
    let cfg = cli.cfg;
    let rows = base_sweep(&specint7(), &cfg, progress_line());
    progress_done();
    if let Some(path) = &cli.csv {
        write_csv(path, &bw_core::export::banking_csv(&rows));
    }
    println!("{}", fig12_13_banking(&rows));
}
