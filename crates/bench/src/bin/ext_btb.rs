//! Extension study: the BTB size/associativity design space the paper
//! defers, measured with the gshare-16K direction predictor.

use bw_bench::StudyOut;
use bw_core::experiments::btb_study;
use bw_workload::specint7;

fn main() {
    bw_bench::study_main(|runner, cli, progress| {
        StudyOut::text(btb_study(runner, &specint7(), &cli.cfg, progress))
    });
}
