//! Extension study: the BTB size/associativity design space the paper
//! defers, measured with the gshare-16K direction predictor.

use bw_bench::{config_from_args, progress_done, progress_line};
use bw_core::experiments::btb_study;
use bw_workload::specint7;

fn main() {
    let cfg = config_from_args();
    let out = btb_study(&specint7(), &cfg, progress_line());
    progress_done();
    println!("{out}");
}
