//! Regenerates Figure 19: pipeline gating with "both strong"
//! confidence estimation — normalized energy, instruction volume and
//! IPC for hybrid_0 and hybrid_3 at thresholds N = 0, 1, 2.

use bw_bench::{cli_from_args, progress_done, progress_line, write_csv};
use bw_core::experiments::{fig19_render, gating_study};
use bw_workload::specint7;

fn main() {
    let cli = cli_from_args();
    let cfg = cli.cfg;
    let rows = gating_study(&specint7(), &cfg, progress_line());
    progress_done();
    if let Some(path) = &cli.csv {
        write_csv(path, &bw_core::export::gating_csv(&rows));
    }
    println!("{}", fig19_render(&rows));
}
