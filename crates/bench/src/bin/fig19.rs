//! Regenerates Figure 19: pipeline gating with "both strong"
//! confidence estimation — normalized energy, instruction volume and
//! IPC for hybrid_0 and hybrid_3 at thresholds N = 0, 1, 2.

use bw_bench::StudyOut;
use bw_core::experiments::{fig19_render, gating_rows};
use bw_core::export::gating_csv;
use bw_workload::specint7;

fn main() {
    bw_bench::study_main(|runner, cli, progress| {
        let rows = gating_rows(runner, &specint7(), &cli.cfg, progress);
        StudyOut {
            text: fig19_render(&rows),
            csv: Some(gating_csv(&rows)),
        }
    });
}
