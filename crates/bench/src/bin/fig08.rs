//! Regenerates Figure 8: SPECfp direction-prediction accuracy and IPC.

use bw_bench::{cli_from_args, progress_done, progress_line, write_csv};
use bw_core::experiments::{base_sweep, fig05_accuracy_ipc};
use bw_workload::specfp;

fn main() {
    let cli = cli_from_args();
    let cfg = cli.cfg;
    let rows = base_sweep(&specfp(), &cfg, progress_line());
    progress_done();
    if let Some(path) = &cli.csv {
        write_csv(path, &bw_core::export::sweep_csv(&rows));
    }
    println!("Figure 8 (SPECfp2000)\n");
    println!("{}", fig05_accuracy_ipc(&rows));
}
