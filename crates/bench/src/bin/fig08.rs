//! Regenerates Figure 8: SPECfp direction-prediction accuracy and IPC.

use bw_core::experiments::fig05_accuracy_ipc;
use bw_core::export::sweep_csv;
use bw_workload::specfp;

fn main() {
    bw_bench::sweep_figure_main(
        "Figure 8 (SPECfp2000)",
        &specfp(),
        sweep_csv,
        fig05_accuracy_ipc,
    );
}
