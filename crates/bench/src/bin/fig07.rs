//! Regenerates Figure 7: SPECint branch-predictor power and overall
//! processor power.

use bw_core::experiments::fig07_power;
use bw_core::export::sweep_csv;
use bw_workload::specint;

fn main() {
    bw_bench::sweep_figure_main("Figure 7 (SPECint2000)", &specint(), sweep_csv, fig07_power);
}
