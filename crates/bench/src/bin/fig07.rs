//! Regenerates Figure 7: SPECint branch-predictor power and overall
//! processor power.

use bw_bench::{cli_from_args, progress_done, progress_line, write_csv};
use bw_core::experiments::{base_sweep, fig07_power};
use bw_workload::specint;

fn main() {
    let cli = cli_from_args();
    let cfg = cli.cfg;
    let rows = base_sweep(&specint(), &cfg, progress_line());
    progress_done();
    if let Some(path) = &cli.csv {
        write_csv(path, &bw_core::export::sweep_csv(&rows));
    }
    println!("Figure 7 (SPECint2000)\n");
    println!("{}", fig07_power(&rows));
}
