//! Regenerates Figure 9: SPECfp predictor energy, overall energy and
//! energy-delay.

use bw_core::experiments::fig06_energy;
use bw_core::export::sweep_csv;
use bw_workload::specfp;

fn main() {
    bw_bench::sweep_figure_main("Figure 9 (SPECfp2000)", &specfp(), sweep_csv, fig06_energy);
}
