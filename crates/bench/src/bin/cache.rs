//! Run-cache maintenance: `cache verify` and `cache repair`.
//!
//! * `verify` — scan every entry in the cache directory and report
//!   `ok / stale / corrupt / stray tmp` counts, listing each damaged
//!   file. Exits 1 when anything needs repair, 0 when clean.
//! * `repair` — same scan, then evict every corrupt entry and stray
//!   `.tmp` staging file (stale entries are left alone — they are
//!   replaced lazily on the next store of their key). Exits 0.
//!   With `--migrate`, first moves legacy flat-layout entries into
//!   their two-level shard subdirectories (a pure rename pass, safe
//!   to re-run).
//!
//! Both accept `--cache-dir DIR` (default `results/cache`).

#![forbid(unsafe_code)]

use std::path::PathBuf;

use bw_core::RunCache;

fn usage() -> ! {
    eprintln!("usage: cache <verify|repair> [--cache-dir DIR] [--migrate]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<String> = None;
    let mut dir: Option<PathBuf> = None;
    let mut migrate = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "verify" | "repair" if mode.is_none() => mode = Some(args[i].clone()),
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(p) => dir = Some(PathBuf::from(p)),
                    None => usage(),
                }
            }
            "--migrate" => migrate = true,
            _ => usage(),
        }
        i += 1;
    }
    let Some(mode) = mode else { usage() };
    if migrate && mode != "repair" {
        eprintln!("--migrate only applies to `repair`");
        usage();
    }
    let cache = RunCache::new(dir.unwrap_or_else(RunCache::default_dir));
    println!("cache dir: {}", cache.dir().display());

    if migrate {
        let moved = cache.migrate();
        println!("migrated {moved} flat entr(ies) into shard subdirectories");
    }
    let audit = match mode.as_str() {
        "verify" => cache.verify_dir(),
        _ => cache.repair(),
    };
    for p in &audit.corrupt {
        println!("  corrupt: {}", p.display());
    }
    for p in &audit.stray_tmp {
        println!("  stray tmp: {}", p.display());
    }
    println!("{}: {}", mode, audit.summary());
    if mode == "repair" {
        println!(
            "evicted {} file(s)",
            audit.corrupt.len() + audit.stray_tmp.len()
        );
    } else if !audit.is_clean() {
        std::process::exit(1);
    }
}
