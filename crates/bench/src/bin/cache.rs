//! Run-cache maintenance: `cache verify`, `cache repair`, and
//! `cache evict`.
//!
//! * `verify` — scan every entry in the cache directory and report
//!   `ok / stale / corrupt / stray tmp` counts, listing each damaged
//!   file. Exits 1 when anything needs repair, 0 when clean.
//! * `repair` — same scan, then evict every corrupt entry and stray
//!   `.tmp` staging file (stale entries are left alone — they are
//!   replaced lazily on the next store of their key). Exits 0.
//!   With `--migrate`, first moves legacy flat-layout entries into
//!   their two-level shard subdirectories (a pure rename pass, safe
//!   to re-run).
//! * `evict` — trim the cache to a size budget, least-recently-used
//!   entries first: `--max-bytes N` and/or `--max-entries N` set the
//!   budget (omitting both just prints current usage). Foreign files
//!   (the quarantine ledger, the flight journal) are never evicted.
//!   A *running* daemon enforces its own budget with in-flight pins;
//!   this offline pass is for cold caches.
//!
//! All accept `--cache-dir DIR` (default `results/cache`).

#![forbid(unsafe_code)]

use std::path::PathBuf;

use bw_core::{CacheBudget, RunCache};

fn usage() -> ! {
    eprintln!(
        "usage: cache <verify|repair|evict> [--cache-dir DIR] [--migrate] \
         [--max-bytes N] [--max-entries N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<String> = None;
    let mut dir: Option<PathBuf> = None;
    let mut migrate = false;
    let mut budget = CacheBudget::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "verify" | "repair" | "evict" if mode.is_none() => mode = Some(args[i].clone()),
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(p) => dir = Some(PathBuf::from(p)),
                    None => usage(),
                }
            }
            "--migrate" => migrate = true,
            "--max-bytes" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) => budget.max_bytes = Some(n),
                    None => usage(),
                }
            }
            "--max-entries" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => budget.max_entries = Some(n),
                    None => usage(),
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    let Some(mode) = mode else { usage() };
    if migrate && mode != "repair" {
        eprintln!("--migrate only applies to `repair`");
        usage();
    }
    if !budget.is_unbounded() && mode != "evict" {
        eprintln!("--max-bytes/--max-entries only apply to `evict`");
        usage();
    }
    let cache = RunCache::new(dir.unwrap_or_else(RunCache::default_dir));
    println!("cache dir: {}", cache.dir().display());

    if mode == "evict" {
        let (bytes, entries) = cache.usage();
        println!("usage: {entries} entr(ies), {bytes} bytes");
        if budget.is_unbounded() {
            println!("no budget given (--max-bytes/--max-entries); nothing to evict");
            return;
        }
        // Offline maintenance: no daemon, no in-flight runs to pin.
        let report = cache.evict_to_budget(&budget, &|_| false);
        println!("evict: {}", report.summary());
        return;
    }

    if migrate {
        let moved = cache.migrate();
        println!("migrated {moved} flat entr(ies) into shard subdirectories");
    }
    let audit = match mode.as_str() {
        "verify" => cache.verify_dir(),
        _ => cache.repair(),
    };
    for p in &audit.corrupt {
        println!("  corrupt: {}", p.display());
    }
    for p in &audit.stray_tmp {
        println!("  stray tmp: {}", p.display());
    }
    println!("{}: {}", mode, audit.summary());
    if mode == "repair" {
        println!(
            "evicted {} file(s)",
            audit.corrupt.len() + audit.stray_tmp.len()
        );
    } else if !audit.is_clean() {
        std::process::exit(1);
    }
}
