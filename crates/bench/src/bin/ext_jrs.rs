//! Extension study: pipeline gating with a standalone JRS confidence
//! estimator versus the paper's "both strong" — including on a
//! non-hybrid predictor, which "both strong" cannot gate.

use bw_bench::{config_from_args, progress_done, progress_line};
use bw_core::experiments::{jrs_gating_render, jrs_gating_study};
use bw_workload::specint7;

fn main() {
    let cfg = config_from_args();
    let rows = jrs_gating_study(&specint7(), &cfg, progress_line());
    progress_done();
    println!("{}", jrs_gating_render(&rows));
}
