//! Extension study: pipeline gating with a standalone JRS confidence
//! estimator versus the paper's "both strong" — including on a
//! non-hybrid predictor, which "both strong" cannot gate.

use bw_bench::StudyOut;
use bw_core::experiments::{jrs_gating_render, jrs_gating_study};
use bw_workload::specint7;

fn main() {
    bw_bench::study_main(|runner, cli, progress| {
        let rows = jrs_gating_study(runner, &specint7(), &cli.cfg, progress);
        StudyOut::text(jrs_gating_render(&rows))
    });
}
