//! Regenerates Table 2: benchmark summary — branch frequencies and
//! 16K-entry bimodal/gshare accuracies for all 22 models, next to the
//! paper's values.

use bw_bench::config_from_args;
use bw_core::experiments::table2;
use bw_workload::all_benchmarks;

fn main() {
    let cfg = config_from_args();
    let insts = (cfg.warmup_insts + cfg.measure_insts).max(2_000_000);
    let models: Vec<_> = all_benchmarks().iter().collect();
    println!("{}", table2(&models, insts, cfg.seed));
}
