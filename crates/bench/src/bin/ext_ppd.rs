//! Extension study: the PPD's savings across predictor organizations
//! (the paper's proportionality claim) — gate rates are a property of
//! the instruction stream, so local savings track the gated share.

use bw_bench::StudyOut;
use bw_core::experiments::ppd_proportionality_study;
use bw_workload::benchmark;

fn main() {
    bw_bench::study_main(|runner, cli, progress| {
        StudyOut::text(ppd_proportionality_study(
            runner,
            benchmark("gzip").expect("built-in"),
            &cli.cfg,
            progress,
        ))
    });
}
