//! Extension study: the PPD's savings across predictor organizations
//! (the paper's proportionality claim) — gate rates are a property of
//! the instruction stream, so local savings track the gated share.

use bw_bench::{config_from_args, progress_done, progress_line};
use bw_core::experiments::ppd_proportionality_study;
use bw_workload::benchmark;

fn main() {
    let cfg = config_from_args();
    let out =
        ppd_proportionality_study(benchmark("gzip").expect("built-in"), &cfg, progress_line());
    progress_done();
    println!("{out}");
}
