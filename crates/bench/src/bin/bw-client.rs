//! `bw-client` — ad-hoc client for the `bw-server` simulation daemon.
//!
//! Submits a benchmark × predictor grid of cells to a running daemon
//! and prints one line per cell as results stream back, plus a final
//! tally. Also exposes the daemon's counters (`--stats`).
//!
//! ```text
//! bw-client --server 127.0.0.1:7381 --bench gzip,gcc --predictors Bim_4k,Gsh_1_16k_12 --quick
//! bw-client --server unix:/tmp/bw.sock --stats
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use bw_core::zoo::NamedPredictor;
use bw_core::SimConfig;
use bw_server::{predictor_by_label, CellSpec, CellStatus, Client, RetryPolicy};

const USAGE: &str = "\
bw-client — submit simulation cells to a bw-server daemon

USAGE:
  bw-client [OPTIONS]

OPTIONS:
  --server ADDR      Daemon address: host:port or unix:/path
                     (default 127.0.0.1:7381)
  --bench LIST       Comma-separated benchmark names (default gzip)
  --predictors LIST  Comma-separated zoo labels, or `figure` for the
                     paper's fourteen configurations (default Bim_4k)
  --quick | --paper  Instruction budgets (default --paper)
  --warmup N         Explicit warmup budget
  --measure N        Explicit measured budget
  --seed N           Workload seed
  --banked           Bank the direction predictor
  --priority         Ask for the daemon's priority lane (small submits)
  --retries N        Attempts for retryable refusals — quota/queue-full
                     backpressure — with exponential backoff and
                     deterministic jitter (default 4, 1 = no retries)
  --session-file F   Persist the session token to F; when F already
                     holds a token, reconnect with it and resume the
                     session's unacknowledged cells first
  --resume           With --session-file: only resume; submit nothing
                     new (fails if no token is saved)
  --stats            Print daemon counters and exit
  --help             Show this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("bw-client: {msg}");
    eprintln!("run with --help for usage");
    ExitCode::from(2)
}

fn parse_num(v: String) -> Result<u64, String> {
    v.replace('_', "")
        .parse::<u64>()
        .map_err(|e| format!("`{v}`: {e}"))
}

fn main() -> ExitCode {
    let mut server = "127.0.0.1:7381".to_string();
    let mut benches = vec!["gzip".to_string()];
    let mut predictors = vec!["Bim_4k".to_string()];
    let mut cfg = SimConfig::paper(0xb4a2);
    let mut stats_only = false;
    let mut priority = false;
    let mut retries = RetryPolicy::default().attempts;
    let mut session_file: Option<PathBuf> = None;
    let mut resume_only = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--server" => match value("--server") {
                Ok(v) => server = v,
                Err(e) => return fail(&e),
            },
            "--priority" => priority = true,
            "--retries" => match value("--retries").and_then(parse_num) {
                Ok(0) => return fail("--retries must be at least 1"),
                Ok(n) => retries = u32::try_from(n).unwrap_or(u32::MAX),
                Err(e) => return fail(&format!("--retries: {e}")),
            },
            "--session-file" => match value("--session-file") {
                Ok(v) => session_file = Some(PathBuf::from(v)),
                Err(e) => return fail(&e),
            },
            "--resume" => resume_only = true,
            "--bench" => match value("--bench") {
                Ok(v) => benches = v.split(',').map(str::to_string).collect(),
                Err(e) => return fail(&e),
            },
            "--predictors" => match value("--predictors") {
                Ok(v) if v == "figure" => {
                    predictors = NamedPredictor::FIGURE_ORDER
                        .iter()
                        .map(|p| p.label().to_string())
                        .collect();
                }
                Ok(v) => predictors = v.split(',').map(str::to_string).collect(),
                Err(e) => return fail(&e),
            },
            "--quick" => {
                cfg.warmup_insts = 600_000;
                cfg.measure_insts = 200_000;
            }
            "--paper" => {
                cfg.warmup_insts = 3_000_000;
                cfg.measure_insts = 1_000_000;
            }
            "--warmup" => match value("--warmup").and_then(parse_num) {
                Ok(n) => cfg.warmup_insts = n,
                Err(e) => return fail(&format!("--warmup: {e}")),
            },
            "--measure" => match value("--measure").and_then(parse_num) {
                Ok(n) => cfg.measure_insts = n,
                Err(e) => return fail(&format!("--measure: {e}")),
            },
            "--seed" => match value("--seed").and_then(parse_num) {
                Ok(n) => cfg.seed = n,
                Err(e) => return fail(&format!("--seed: {e}")),
            },
            "--banked" => cfg.banked = true,
            "--stats" => stats_only = true,
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }

    if resume_only && session_file.is_none() {
        return fail("--resume requires --session-file");
    }
    let saved_token = session_file.as_ref().and_then(|path| {
        std::fs::read_to_string(path)
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
    });
    if resume_only && saved_token.is_none() {
        return fail("--resume: the session file holds no token yet");
    }

    let mut client = match Client::connect_with(&server, saved_token.as_deref()) {
        Ok(c) => c,
        Err(e) => return fail(&format!("cannot reach daemon at {server}: {e}")),
    };
    eprintln!(
        "connected to {server} (session {}{}, quota {}, queue {})",
        client.session(),
        if client.resumed() { ", resumed" } else { "" },
        client.quota(),
        client.queue_capacity()
    );
    if let Some(path) = &session_file {
        if let Err(e) = bw_core::fsutil::atomic_write(path, client.session().as_bytes()) {
            return fail(&format!(
                "cannot save session token to {}: {e}",
                path.display()
            ));
        }
    }

    if stats_only {
        match client.stats() {
            Ok((executed, queued, inflight)) => {
                println!("executed {executed}  queued {queued}  inflight {inflight}");
                client.bye();
                return ExitCode::SUCCESS;
            }
            Err(e) => return fail(&format!("stats: {e}")),
        }
    }

    // Validate predictor labels locally so typos fail before the
    // round-trip (the daemon would refuse them per cell anyway).
    for label in &predictors {
        if predictor_by_label(label).is_none() {
            return fail(&format!(
                "unknown predictor label `{label}` (try --predictors figure)"
            ));
        }
    }

    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for label in &predictors {
        for bench in &benches {
            let predictor = predictor_by_label(label).expect("validated above");
            specs.push(CellSpec::for_run(bench, predictor, &cfg));
            labels.push(format!("{label} / {bench}"));
        }
    }

    let (mut ok, mut refused, mut failed) = (0u64, 0u64, 0u64);

    // A resumed session redelivers everything the previous connection
    // never acked — drain that first, before any new submit.
    if client.resumed() {
        let reqs = match client.resume() {
            Ok(r) => r,
            Err(e) => return fail(&format!("resume: {e}")),
        };
        if reqs.is_empty() {
            eprintln!("nothing left to resume");
        }
        for req in reqs {
            let replies = match client.collect_request(req) {
                Ok(r) => r,
                Err(e) => return fail(&format!("resume request {req}: {e}")),
            };
            eprintln!(
                "resumed request {req}: {} cell(s) redelivered",
                replies.len()
            );
            let received: Vec<u64> = replies.iter().map(|r| r.cell).collect();
            for reply in &replies {
                let label = format!("resumed {req} / cell {}", reply.cell);
                tally_reply(&label, &reply.status, &mut ok, &mut refused, &mut failed);
            }
            if let Err(e) = client.ack(req, &received) {
                return fail(&format!("ack request {req}: {e}"));
            }
        }
    } else if resume_only {
        eprintln!("daemon did not recognize the saved token; nothing to resume");
    }

    let (mut attempts, mut retried) = (1_u32, 0_usize);
    if !resume_only {
        let policy = RetryPolicy {
            attempts: retries,
            ..RetryPolicy::default()
        };
        let (replies, report) = match client.run_cells_with_retry(1, &specs, priority, &policy) {
            Ok(r) => r,
            Err(e) => return fail(&format!("submit: {e}")),
        };
        let received: Vec<u64> = replies.iter().map(|r| r.cell).collect();
        for reply in &replies {
            let label = labels.get(reply.cell as usize).map_or("?", String::as_str);
            tally_reply(label, &reply.status, &mut ok, &mut refused, &mut failed);
        }
        if let Err(e) = client.ack(1, &received) {
            return fail(&format!("ack: {e}"));
        }
        attempts = report.attempts;
        retried = report.retried;
    }
    client.bye();

    if retried > 0 {
        println!(
            "{ok} ok, {refused} refused, {failed} failed \
             after {attempts} attempt(s) ({retried} cell resubmission(s))"
        );
    } else {
        println!("{ok} ok, {refused} refused, {failed} failed");
    }
    if refused + failed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Prints one per-cell result line and bumps the matching counter.
fn tally_reply(
    label: &str,
    status: &CellStatus,
    ok: &mut u64,
    refused: &mut u64,
    failed: &mut u64,
) {
    match status {
        CellStatus::Ok(value) => {
            use serde::Deserialize;
            *ok += 1;
            match bw_core::RunResult::from_value(value) {
                Ok(run) => println!(
                    "{label:28} ok    acc {:6.2}%  ipc {:5.3}  bpred {:6.1} mW  total {:6.2} W",
                    run.accuracy() * 100.0,
                    run.ipc(),
                    run.bpred_power_w() * 1e3,
                    run.total_power_w(),
                ),
                Err(e) => println!("{label:28} ok    (undecodable result: {})", e.0),
            }
        }
        CellStatus::Refused { reason, detail } => {
            *refused += 1;
            println!("{label:28} refused ({}): {detail}", reason.as_str());
        }
        CellStatus::Failed { outcome, detail } => {
            *failed += 1;
            println!("{label:28} failed ({outcome}): {detail}");
        }
    }
}
