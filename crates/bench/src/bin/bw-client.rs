//! `bw-client` — ad-hoc client for the `bw-server` simulation daemon.
//!
//! Submits a benchmark × predictor grid of cells to a running daemon
//! and prints one line per cell as results stream back, plus a final
//! tally. Also exposes the daemon's counters (`--stats`).
//!
//! ```text
//! bw-client --server 127.0.0.1:7381 --bench gzip,gcc --predictors Bim_4k,Gsh_1_16k_12 --quick
//! bw-client --server unix:/tmp/bw.sock --stats
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use bw_core::zoo::NamedPredictor;
use bw_core::SimConfig;
use bw_server::{predictor_by_label, CellSpec, CellStatus, Client};

const USAGE: &str = "\
bw-client — submit simulation cells to a bw-server daemon

USAGE:
  bw-client [OPTIONS]

OPTIONS:
  --server ADDR      Daemon address: host:port or unix:/path
                     (default 127.0.0.1:7381)
  --bench LIST       Comma-separated benchmark names (default gzip)
  --predictors LIST  Comma-separated zoo labels, or `figure` for the
                     paper's fourteen configurations (default Bim_4k)
  --quick | --paper  Instruction budgets (default --paper)
  --warmup N         Explicit warmup budget
  --measure N        Explicit measured budget
  --seed N           Workload seed
  --banked           Bank the direction predictor
  --stats            Print daemon counters and exit
  --help             Show this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("bw-client: {msg}");
    eprintln!("run with --help for usage");
    ExitCode::from(2)
}

fn parse_num(v: String) -> Result<u64, String> {
    v.replace('_', "")
        .parse::<u64>()
        .map_err(|e| format!("`{v}`: {e}"))
}

fn main() -> ExitCode {
    let mut server = "127.0.0.1:7381".to_string();
    let mut benches = vec!["gzip".to_string()];
    let mut predictors = vec!["Bim_4k".to_string()];
    let mut cfg = SimConfig::paper(0xb4a2);
    let mut stats_only = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--server" => match value("--server") {
                Ok(v) => server = v,
                Err(e) => return fail(&e),
            },
            "--bench" => match value("--bench") {
                Ok(v) => benches = v.split(',').map(str::to_string).collect(),
                Err(e) => return fail(&e),
            },
            "--predictors" => match value("--predictors") {
                Ok(v) if v == "figure" => {
                    predictors = NamedPredictor::FIGURE_ORDER
                        .iter()
                        .map(|p| p.label().to_string())
                        .collect();
                }
                Ok(v) => predictors = v.split(',').map(str::to_string).collect(),
                Err(e) => return fail(&e),
            },
            "--quick" => {
                cfg.warmup_insts = 600_000;
                cfg.measure_insts = 200_000;
            }
            "--paper" => {
                cfg.warmup_insts = 3_000_000;
                cfg.measure_insts = 1_000_000;
            }
            "--warmup" => match value("--warmup").and_then(parse_num) {
                Ok(n) => cfg.warmup_insts = n,
                Err(e) => return fail(&format!("--warmup: {e}")),
            },
            "--measure" => match value("--measure").and_then(parse_num) {
                Ok(n) => cfg.measure_insts = n,
                Err(e) => return fail(&format!("--measure: {e}")),
            },
            "--seed" => match value("--seed").and_then(parse_num) {
                Ok(n) => cfg.seed = n,
                Err(e) => return fail(&format!("--seed: {e}")),
            },
            "--banked" => cfg.banked = true,
            "--stats" => stats_only = true,
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }

    let mut client = match Client::connect(&server) {
        Ok(c) => c,
        Err(e) => return fail(&format!("cannot reach daemon at {server}: {e}")),
    };
    eprintln!(
        "connected to {server} (quota {}, queue {})",
        client.quota(),
        client.queue_capacity()
    );

    if stats_only {
        match client.stats() {
            Ok((executed, queued, inflight)) => {
                println!("executed {executed}  queued {queued}  inflight {inflight}");
                client.bye();
                return ExitCode::SUCCESS;
            }
            Err(e) => return fail(&format!("stats: {e}")),
        }
    }

    // Validate predictor labels locally so typos fail before the
    // round-trip (the daemon would refuse them per cell anyway).
    for label in &predictors {
        if predictor_by_label(label).is_none() {
            return fail(&format!(
                "unknown predictor label `{label}` (try --predictors figure)"
            ));
        }
    }

    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for label in &predictors {
        for bench in &benches {
            let predictor = predictor_by_label(label).expect("validated above");
            specs.push(CellSpec::for_run(bench, predictor, &cfg));
            labels.push(format!("{label} / {bench}"));
        }
    }

    let replies = match client.run_cells(1, &specs) {
        Ok(r) => r,
        Err(e) => return fail(&format!("submit: {e}")),
    };
    client.bye();

    let (mut ok, mut refused, mut failed) = (0u64, 0u64, 0u64);
    for reply in &replies {
        let label = labels.get(reply.cell as usize).map_or("?", String::as_str);
        match &reply.status {
            CellStatus::Ok(value) => {
                use serde::Deserialize;
                ok += 1;
                match bw_core::RunResult::from_value(value) {
                    Ok(run) => println!(
                        "{label:28} ok    acc {:6.2}%  ipc {:5.3}  bpred {:6.1} mW  total {:6.2} W",
                        run.accuracy() * 100.0,
                        run.ipc(),
                        run.bpred_power_w() * 1e3,
                        run.total_power_w(),
                    ),
                    Err(e) => println!("{label:28} ok    (undecodable result: {})", e.0),
                }
            }
            CellStatus::Refused { reason, detail } => {
                refused += 1;
                println!("{label:28} refused ({}): {detail}", reason.as_str());
            }
            CellStatus::Failed { outcome, detail } => {
                failed += 1;
                println!("{label:28} failed ({outcome}): {detail}");
            }
        }
    }
    println!("{ok} ok, {refused} refused, {failed} failed");
    if refused + failed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
