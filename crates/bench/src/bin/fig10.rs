//! Regenerates Figure 10: SPECfp predictor power and overall power.

use bw_core::experiments::fig07_power;
use bw_core::export::sweep_csv;
use bw_workload::specfp;

fn main() {
    bw_bench::sweep_figure_main("Figure 10 (SPECfp2000)", &specfp(), sweep_csv, fig07_power);
}
