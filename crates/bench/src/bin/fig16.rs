//! Regenerates Figures 16 and 17: net power/energy savings from the
//! prediction probe detector on a 32K-entry GAs predictor, for both
//! timing scenarios and with/without banking.

use bw_bench::StudyOut;
use bw_core::experiments::{fig16_fig17_render, ppd_rows};
use bw_core::export::ppd_csv;
use bw_workload::specint7;

fn main() {
    bw_bench::study_main(|runner, cli, progress| {
        let rows = ppd_rows(runner, &specint7(), &cli.cfg, progress);
        StudyOut {
            text: fig16_fig17_render(&rows),
            csv: Some(ppd_csv(&rows)),
        }
    });
}
