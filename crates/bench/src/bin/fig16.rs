//! Regenerates Figures 16 and 17: net power/energy savings from the
//! prediction probe detector on a 32K-entry GAs predictor, for both
//! timing scenarios and with/without banking.

use bw_bench::{cli_from_args, progress_done, progress_line, write_csv};
use bw_core::experiments::{fig16_fig17_render, ppd_study};
use bw_workload::specint7;

fn main() {
    let cli = cli_from_args();
    let cfg = cli.cfg;
    let rows = ppd_study(&specint7(), &cfg, progress_line());
    progress_done();
    if let Some(path) = &cli.csv {
        write_csv(path, &bw_core::export::ppd_csv(&rows));
    }
    println!("{}", fig16_fig17_render(&rows));
}
