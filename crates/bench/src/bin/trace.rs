//! The `bw-trace` command line: record, inspect, characterize and
//! import `.bwt` branch traces.
//!
//! ```text
//! trace record <benchmark> [--out FILE] [common flags]
//! trace stats  <FILE.bwt>  [--max-insts N]
//! trace info   <FILE.bwt>
//! trace import <FILE.txt>  [--name NAME] [--out FILE]
//! ```
//!
//! `record` captures a built-in benchmark model at the run budget the
//! common flags describe (`--quick`, `--paper`, `--warmup`/`--measure`,
//! `--seed`), plus the replay slack, so the recording replays under
//! the same flags: `fig05 --trace gzip.bwt --quick` after
//! `trace record gzip --quick` renders the same rows as the generated
//! sweep.
//!
//! `stats` replays the recording and prints a Table-2-style
//! characterization: branch frequencies, taken rates, per-site bias
//! spread, and the paper's Figure-14 inter-branch distance histograms.
//!
//! `import` converts a ChampSim-style text trace (one instruction per
//! line; see `bw_core::trace::import_text` for the grammar) into a
//! `.bwt` file that replays on the simulated machine.

use std::path::{Path, PathBuf};
use std::process::exit;

use bw_core::trace::{characterize, import_text, record_model, REPLAY_SLACK_INSTS};
use bw_core::trace::{Trace, TraceReader};
use bw_core::SimConfig;
use bw_workload::benchmark;

fn usage() -> ! {
    eprintln!(
        "usage: trace record <benchmark> [--out FILE] [--quick|--paper] \
         [--warmup N] [--measure N] [--seed N]\n\
         \x20      trace stats  <FILE.bwt> [--max-insts N]\n\
         \x20      trace info   <FILE.bwt>\n\
         \x20      trace import <FILE.txt> [--name NAME] [--out FILE]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = &args[1..];
    match cmd.as_str() {
        "record" => cmd_record(rest),
        "stats" => cmd_stats(rest),
        "info" => cmd_info(rest),
        "import" => cmd_import(rest),
        _ => usage(),
    }
}

/// Pulls `--flag VALUE` out of `args`, returning (value, remaining).
fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        usage();
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn parse_num(v: &str, flag: &str) -> u64 {
    match v.replace('_', "").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("{flag} needs a number, got '{v}'");
            usage();
        }
    }
}

/// Budget flags shared with the figure binaries, minus runner controls.
fn budget_from(args: &mut Vec<String>) -> SimConfig {
    let mut cfg = SimConfig::paper(0xb4a2);
    if let Some(i) = args.iter().position(|a| a == "--quick") {
        args.remove(i);
        cfg.warmup_insts = 600_000;
        cfg.measure_insts = 200_000;
    }
    if let Some(i) = args.iter().position(|a| a == "--paper") {
        args.remove(i);
        cfg.warmup_insts = 3_000_000;
        cfg.measure_insts = 1_000_000;
    }
    if let Some(v) = take_opt(args, "--warmup") {
        cfg.warmup_insts = parse_num(&v, "--warmup");
    }
    if let Some(v) = take_opt(args, "--measure") {
        cfg.measure_insts = parse_num(&v, "--measure");
    }
    if let Some(v) = take_opt(args, "--seed") {
        cfg.seed = parse_num(&v, "--seed");
    }
    cfg
}

fn positional(args: Vec<String>, what: &str) -> String {
    let mut pos: Vec<String> = args.into_iter().collect();
    if pos.len() != 1 || pos[0].starts_with("--") {
        eprintln!("expected exactly one {what}");
        usage();
    }
    pos.remove(0)
}

fn load(path: &str) -> Trace {
    match Trace::load(std::path::Path::new(path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot load trace {path}: {e}");
            exit(1);
        }
    }
}

fn save(trace: &Trace, path: &Path) {
    if let Err(e) = trace.save(path) {
        eprintln!("cannot write {}: {e}", path.display());
        exit(1);
    }
    println!(
        "wrote {} ({} insts, {} cond, {} indirect, {} data addrs, digest {:016x})",
        path.display(),
        trace.meta().insts,
        trace.cond_count(),
        trace.indirect_count(),
        trace.data_count(),
        trace.digest(),
    );
}

fn cmd_record(args: &[String]) {
    let mut args = args.to_vec();
    let cfg = budget_from(&mut args);
    let out = take_opt(&mut args, "--out");
    let name = positional(args, "benchmark name");
    let Some(model) = benchmark(&name) else {
        eprintln!(
            "unknown benchmark '{name}'; known: {}",
            bw_workload::all_benchmarks()
                .iter()
                .map(|m| m.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        exit(1);
    };
    let insts = cfg.warmup_insts + cfg.measure_insts + REPLAY_SLACK_INSTS;
    eprintln!(
        "recording {name}: {insts} insts (warmup {} + measure {} + slack {REPLAY_SLACK_INSTS}), seed {}",
        cfg.warmup_insts, cfg.measure_insts, cfg.seed
    );
    let program = model.build_program(cfg.seed);
    let trace = record_model(model, &program, cfg.seed, insts);
    let out = out.map_or_else(|| PathBuf::from(format!("{name}.bwt")), PathBuf::from);
    save(&trace, &out);
}

fn cmd_stats(args: &[String]) {
    let mut args = args.to_vec();
    let max = take_opt(&mut args, "--max-insts").map_or(u64::MAX, |v| parse_num(&v, "--max-insts"));
    let path = positional(args, "trace file");
    let trace = load(&path);
    println!("{}", characterize(&trace, max));
}

fn cmd_info(args: &[String]) {
    let path = positional(args.to_vec(), "trace file");
    let trace = load(&path);
    let m = trace.meta();
    println!("trace file        {path}");
    println!("workload          {}", m.name);
    println!("instructions      {}", m.insts);
    println!("seed              {:#x}", m.seed);
    println!("working set       {} bytes", m.working_set);
    println!("random frac       {}", m.random_frac);
    println!("entry pc          {:#x}", m.entry.0);
    println!("returns in stream {}", m.returns_in_stream);
    println!("cond outcomes     {}", trace.cond_count());
    println!("indirect targets  {}", trace.indirect_count());
    println!("data addresses    {}", trace.data_count());
    println!("content digest    {:016x}", trace.digest());
    // The decoded bitcode form the replay hot path actually runs on:
    // one-time decode cost and flat-array footprint.
    let t0 = std::time::Instant::now();
    let decoded = bw_core::trace::DecodedTrace::new(&trace);
    let decode_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("decoded bitcode   {} bytes", decoded.decoded_bytes());
    println!("decode time       {decode_ms:.2} ms (one-time, shared by all readers)");
    // A quick liveness check: replay the first few thousand steps so a
    // corrupt-but-well-formed file fails here rather than mid-figure.
    let mut reader = TraceReader::new(&trace);
    let probe = m.insts.min(4096);
    for _ in 0..probe {
        let _ = bw_workload::InstSource::step(&mut reader);
    }
    let mut fast = decoded.reader();
    for _ in 0..probe {
        let _ = bw_workload::InstSource::step(&mut fast);
    }
    println!("replay probe      ok ({probe} insts, streaming + decoded)");
}

fn cmd_import(args: &[String]) {
    let mut args = args.to_vec();
    let name = take_opt(&mut args, "--name");
    let out = take_opt(&mut args, "--out");
    let path = positional(args, "text trace file");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        }
    };
    let stem = name.unwrap_or_else(|| {
        std::path::Path::new(&path).file_stem().map_or_else(
            || "imported".to_string(),
            |s| s.to_string_lossy().into_owned(),
        )
    });
    let trace = match import_text(&stem, &text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("import failed: {e}");
            exit(1);
        }
    };
    let out = out.map_or_else(|| PathBuf::from(format!("{stem}.bwt")), PathBuf::from);
    save(&trace, &out);
}
