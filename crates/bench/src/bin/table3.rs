//! Regenerates Table 3: number of predictor banks per capacity.

fn main() {
    println!("{}", bw_core::experiments::table3());
}
