//! Extension study: speculative history update with repair versus
//! commit-time history update — quantifying why the paper's simulator
//! models the former.

use bw_bench::StudyOut;
use bw_core::experiments::spec_history_study;
use bw_workload::specint7;

fn main() {
    bw_bench::study_main(|runner, cli, progress| {
        StudyOut::text(spec_history_study(runner, &specint7(), &cli.cfg, progress))
    });
}
