//! Extension study: speculative history update with repair versus
//! commit-time history update — quantifying why the paper's simulator
//! models the former.

use bw_bench::{config_from_args, progress_done, progress_line};
use bw_core::experiments::spec_history_study;
use bw_workload::specint7;

fn main() {
    let cfg = config_from_args();
    let out = spec_history_study(&specint7(), &cfg, progress_line());
    progress_done();
    println!("{out}");
}
