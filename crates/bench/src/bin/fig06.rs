//! Regenerates Figure 6: SPECint branch-predictor energy, overall
//! energy, and overall energy-delay.

use bw_core::experiments::fig06_energy;
use bw_core::export::sweep_csv;
use bw_workload::specint;

fn main() {
    bw_bench::sweep_figure_main(
        "Figure 6 (SPECint2000)",
        &specint(),
        sweep_csv,
        fig06_energy,
    );
}
