//! Regenerates Figure 2: comparison between the "old" Wattch 1.02 and
//! "new" (column-decoder) array power models, averaged over SPECint.

use bw_bench::{cli_from_args, progress_done, progress_line, write_csv};
use bw_core::experiments::{base_sweep, fig02_model_comparison};
use bw_workload::specint;

fn main() {
    let cli = cli_from_args();
    let cfg = cli.cfg;
    let rows = base_sweep(&specint(), &cfg, progress_line());
    progress_done();
    if let Some(path) = &cli.csv {
        write_csv(path, &bw_core::export::sweep_csv(&rows));
    }
    println!("{}", fig02_model_comparison(&rows));
}
