//! Regenerates Figure 2: comparison between the "old" Wattch 1.02 and
//! "new" (column-decoder) array power models, averaged over SPECint.

use bw_core::experiments::fig02_model_comparison;
use bw_core::export::sweep_csv;
use bw_workload::specint;

fn main() {
    bw_bench::sweep_figure_main("", &specint(), sweep_csv, fig02_model_comparison);
}
