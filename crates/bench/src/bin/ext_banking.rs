//! Extension study: bank-count ablation for a 64-Kbit PHT, justifying
//! Table 3's choice of four banks.

fn main() {
    println!("{}", bw_core::experiments::banking_ablation());
}
