//! Deterministic fault injection for the branchwatt supervision stack.
//!
//! The supervised runner (`bw-core`) promises that a panicking,
//! hanging, or corrupted run degrades a sweep instead of destroying
//! it. This crate makes that promise *testable*: a seeded
//! [`FaultPlan`] arms a process-global set of injectors, and the
//! crates that host injection points (`bw-core`'s sim loop and run
//! cache, `bw-trace`'s replay reader) consult it — behind their
//! `fault-inject` features — to make a *chosen* run panic, stall past
//! its watchdog deadline, see its cache entry's bytes corrupted, or
//! find its trace truncated mid-stream.
//!
//! Everything is deterministic: faults target runs by substring match
//! against an injection id (the runner's human-readable run label, or
//! a trace's name), fire a bounded number of [`times`], and corrupt
//! bytes at seed-derived offsets. Two processes armed with the same
//! plan inject exactly the same faults.
//!
//! The crate is dependency-free and always compiles; arming a plan in
//! a build whose consumers lack their `fault-inject` features simply
//! injects nothing (no sites consult it).
//!
//! # Examples
//!
//! ```
//! use bw_fault::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::new(7)
//!     .fault(FaultKind::Panic, "Bim_4k / gzip")
//!     .fault_times(FaultKind::Panic, "Gsh_1_16k_12 / gcc", 1);
//! bw_fault::arm(plan);
//! let fired = bw_fault::scope("Bim_4k / gzip", || bw_fault::injected_panic(""));
//! assert!(fired);
//! bw_fault::disarm();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::path::Path;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Substring embedded in every injected-panic payload, so supervisors
/// (and humans reading logs) can tell induced chaos from real bugs.
pub const PANIC_MARKER: &str = "bw-fault: injected panic";

/// Substring embedded in the panic payload of an injected trace
/// truncation (alongside the reader's normal "exhausted" diagnostics).
pub const TRACE_MARKER: &str = "bw-fault: injected trace truncation";

/// What an injector does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the start of the simulation loop (payload carries
    /// [`PANIC_MARKER`]).
    Panic,
    /// Busy-wait (sleeping) for the given duration at the start of the
    /// simulation loop, checking the run's cancel token, so a
    /// configured watchdog deadline expires.
    Stall(Duration),
    /// Corrupt the run's persistent cache entry on disk (seeded byte
    /// flip or truncation) just before the supervised runner probes it.
    CorruptCache,
    /// Make the trace replay reader behave as if the recording ended
    /// after this many instructions.
    TruncateTrace(u64),
    /// Drop the network connection before the next protocol frame is
    /// written (daemon/client injection point).
    DropConnection,
    /// Write only the first half of the next protocol frame, then
    /// close the connection — a torn frame the peer must survive.
    TruncateFrame,
    /// Slow-loris a protocol write: stall mid-frame for the given
    /// duration so the peer's read-timeout handling is exercised.
    SlowWrite(Duration),
    /// Kill the process (`std::process::abort`) at the injection site
    /// — a crash drill for the daemon's flight journal and
    /// reconnect-and-resume recovery path. The firing is logged to
    /// stderr by the site before aborting; nothing in-process survives
    /// to assert on, so this kind is for CLI-level smokes.
    Kill,
    /// Evict the run-cache entry under the probed key just before the
    /// probe — the eviction-vs-admission race, compressed to a point:
    /// single-flight must still execute the key exactly once and lose
    /// nothing.
    EvictCache,
}

impl FaultKind {
    /// Short stable name used in logs and the env-var syntax.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall(_) => "stall",
            FaultKind::CorruptCache => "corrupt",
            FaultKind::TruncateTrace(_) => "trunc",
            FaultKind::DropConnection => "dropconn",
            FaultKind::TruncateFrame => "truncframe",
            FaultKind::SlowWrite(_) => "slowloris",
            FaultKind::Kill => "kill",
            FaultKind::EvictCache => "evict",
        }
    }
}

/// One armed injector: a kind, a target, and a firing budget.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Substring matched against the injection id (run label or trace
    /// name). The empty string matches every run.
    pub target: String,
    /// Maximum number of firings (`u32::MAX` = unlimited). A budget of
    /// 1 models a *transient* fault: the first attempt fails, a retry
    /// succeeds.
    pub times: u32,
}

/// A seeded, ordered set of faults to inject.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for byte-level injectors (cache corruption offsets).
    pub seed: u64,
    /// The injectors, consulted in order; the first match fires.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds an unlimited-firing fault targeting ids containing
    /// `target`.
    #[must_use]
    pub fn fault(self, kind: FaultKind, target: impl Into<String>) -> Self {
        self.fault_times(kind, target, u32::MAX)
    }

    /// Adds a fault that fires at most `times` times.
    #[must_use]
    pub fn fault_times(mut self, kind: FaultKind, target: impl Into<String>, times: u32) -> Self {
        self.faults.push(FaultSpec {
            kind,
            target: target.into(),
            times,
        });
        self
    }

    /// Parses the `BW_FAULT` syntax: semicolon-separated
    /// `kind[:param][xN]@target` clauses.
    ///
    /// * `panic@Bim_4k / gzip` — panic every time that run executes.
    /// * `stall:500@gcc` — sleep 500 ms at sim start for runs whose
    ///   label contains `gcc`.
    /// * `trunc:20000@gzip-quick` — the trace named/labelled
    ///   `gzip-quick` appears truncated after 20 000 instructions.
    /// * `corrupt@Gsh_1_16k_12 / parser` — flip bytes in that run's
    ///   cache entry before it is read.
    /// * `panicx1@vortex` — fire once, then stop (transient fault).
    /// * `dropconnx1@bw-server` — the daemon drops the first matching
    ///   connection before its next frame (transient network fault).
    /// * `truncframe@bw-server` — frames to matching peers are torn in
    ///   half before the connection closes.
    /// * `slowloris:250@bw-client` — matching writers stall 250 ms
    ///   mid-frame, exercising peer read timeouts.
    /// * `killx1@bw-server worker` — the daemon aborts the whole
    ///   process at its worker crash-drill site (journal/resume
    ///   recovery smoke).
    /// * `evictx1@bw-server admit` — the admission probe's cache entry
    ///   is evicted just before the probe (the eviction race).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed clause.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::new(seed);
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (head, target) = clause
                .split_once('@')
                .ok_or_else(|| format!("fault clause '{clause}' lacks an '@target'"))?;
            let (head, times) = match head.rsplit_once('x') {
                Some((h, n)) if !n.is_empty() && n.chars().all(|c| c.is_ascii_digit()) => (
                    h,
                    n.parse::<u32>()
                        .map_err(|_| format!("bad firing count in '{clause}'"))?,
                ),
                _ => (head, u32::MAX),
            };
            let (kind, param) = match head.split_once(':') {
                Some((k, p)) => (k, Some(p)),
                None => (head, None),
            };
            let num = |what: &str| -> Result<u64, String> {
                param
                    .ok_or_else(|| format!("'{kind}' in '{clause}' needs a :{what} parameter"))?
                    .parse::<u64>()
                    .map_err(|_| format!("bad {what} in '{clause}'"))
            };
            let kind = match kind {
                "panic" => FaultKind::Panic,
                "stall" => FaultKind::Stall(Duration::from_millis(num("millis")?)),
                "corrupt" => FaultKind::CorruptCache,
                "trunc" => FaultKind::TruncateTrace(num("instruction count")?),
                "dropconn" => FaultKind::DropConnection,
                "truncframe" => FaultKind::TruncateFrame,
                "slowloris" => FaultKind::SlowWrite(Duration::from_millis(num("millis")?)),
                "kill" => FaultKind::Kill,
                "evict" => FaultKind::EvictCache,
                other => return Err(format!("unknown fault kind '{other}' in '{clause}'")),
            };
            plan.faults.push(FaultSpec {
                kind,
                target: target.trim().to_string(),
                times,
            });
        }
        Ok(plan)
    }

    /// Builds a plan from the `BW_FAULT` (and optional `BW_FAULT_SEED`)
    /// environment variables; `None` when `BW_FAULT` is unset or empty.
    ///
    /// # Errors
    ///
    /// Same as [`FaultPlan::parse`].
    pub fn from_env() -> Result<Option<Self>, String> {
        let Ok(spec) = std::env::var("BW_FAULT") else {
            return Ok(None);
        };
        if spec.trim().is_empty() {
            return Ok(None);
        }
        let seed = std::env::var("BW_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        FaultPlan::parse(&spec, seed).map(Some)
    }
}

/// The armed plan plus per-fault firing counters and a log of what
/// actually fired (for assertions and failure summaries).
struct Armed {
    plan: FaultPlan,
    fired: Vec<u32>,
    log: Vec<Firing>,
}

/// One injector firing: which fault, at which injection id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Firing {
    /// The fault kind's short name (`panic`/`stall`/`corrupt`/`trunc`).
    pub kind: &'static str,
    /// The injection id the fault matched.
    pub id: String,
}

fn armed() -> &'static Mutex<Option<Armed>> {
    static ARMED: OnceLock<Mutex<Option<Armed>>> = OnceLock::new();
    ARMED.get_or_init(|| Mutex::new(None))
}

/// Arms `plan` process-wide, replacing any previous plan and clearing
/// the firing log.
pub fn arm(plan: FaultPlan) {
    let fired = vec![0; plan.faults.len()];
    *armed().lock().expect("fault plan lock") = Some(Armed {
        plan,
        fired,
        log: Vec::new(),
    });
}

/// Disarms injection, returning the log of faults that fired.
pub fn disarm() -> Vec<Firing> {
    armed()
        .lock()
        .expect("fault plan lock")
        .take()
        .map(|a| a.log)
        .unwrap_or_default()
}

/// `true` if a plan is armed.
#[must_use]
pub fn is_armed() -> bool {
    armed().lock().expect("fault plan lock").is_some()
}

/// A copy of the firing log so far.
#[must_use]
pub fn firing_log() -> Vec<Firing> {
    armed()
        .lock()
        .expect("fault plan lock")
        .as_ref()
        .map(|a| a.log.clone())
        .unwrap_or_default()
}

/// The armed plan's seed (0 when disarmed).
#[must_use]
pub fn armed_seed() -> u64 {
    armed()
        .lock()
        .expect("fault plan lock")
        .as_ref()
        .map_or(0, |a| a.plan.seed)
}

thread_local! {
    static SCOPE: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Guard form of [`scope`]: pushes `id` onto the thread's injection
/// scope until dropped (unwind-safe, so an injected panic still pops).
pub struct ScopeGuard(());

impl ScopeGuard {
    /// Enters the injection scope `id` on this thread.
    #[must_use]
    pub fn enter(id: &str) -> Self {
        SCOPE.with(|s| s.borrow_mut().push(id.to_string()));
        ScopeGuard(())
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Runs `f` with `id` as this thread's ambient injection scope.
pub fn scope<R>(id: &str, f: impl FnOnce() -> R) -> R {
    let _guard = ScopeGuard::enter(id);
    f()
}

fn ambient_scope() -> Option<String> {
    SCOPE.with(|s| s.borrow().last().cloned())
}

/// Consults the armed plan: the first not-yet-exhausted fault accepted
/// by `select` whose target is a substring of `site_id` or of the
/// thread's ambient scope fires (its counter incremented, the firing
/// logged) and its kind is returned.
fn fire(site_id: &str, select: impl Fn(&FaultKind) -> bool) -> Option<FaultKind> {
    let mut guard = armed().lock().expect("fault plan lock");
    let a = guard.as_mut()?;
    let ambient = ambient_scope();
    for (i, spec) in a.plan.faults.iter().enumerate() {
        if !select(&spec.kind) || a.fired[i] >= spec.times {
            continue;
        }
        let hit = site_id.contains(&spec.target)
            || ambient.as_deref().is_some_and(|s| s.contains(&spec.target));
        if !hit {
            continue;
        }
        a.fired[i] += 1;
        let id = if site_id.is_empty() {
            ambient.unwrap_or_default()
        } else {
            site_id.to_string()
        };
        a.log.push(Firing {
            kind: spec.kind.name(),
            id,
        });
        return Some(spec.kind.clone());
    }
    None
}

/// Should the current run panic? (Sim-loop injection point.)
#[must_use]
pub fn injected_panic(site_id: &str) -> bool {
    fire(site_id, |k| matches!(k, FaultKind::Panic)).is_some()
}

/// Should the current run stall, and for how long? (Sim-loop
/// injection point.)
#[must_use]
pub fn injected_stall(site_id: &str) -> Option<Duration> {
    match fire(site_id, |k| matches!(k, FaultKind::Stall(_))) {
        Some(FaultKind::Stall(d)) => Some(d),
        _ => None,
    }
}

/// Should this run's cache entry be corrupted before it is read?
/// (Run-cache injection point.)
#[must_use]
pub fn injected_cache_corruption(site_id: &str) -> bool {
    fire(site_id, |k| matches!(k, FaultKind::CorruptCache)).is_some()
}

/// Should the trace stream appear truncated, and after how many
/// instructions? (Replay-reader injection point.)
#[must_use]
pub fn injected_trace_truncation(site_id: &str) -> Option<u64> {
    match fire(site_id, |k| matches!(k, FaultKind::TruncateTrace(_))) {
        Some(FaultKind::TruncateTrace(n)) => Some(n),
        _ => None,
    }
}

/// Should the next protocol frame's connection be dropped instead of
/// written? (Wire-protocol injection point.)
#[must_use]
pub fn injected_conn_drop(site_id: &str) -> bool {
    fire(site_id, |k| matches!(k, FaultKind::DropConnection)).is_some()
}

/// Should the next protocol frame be torn in half before the
/// connection closes? (Wire-protocol injection point.)
#[must_use]
pub fn injected_frame_truncation(site_id: &str) -> bool {
    fire(site_id, |k| matches!(k, FaultKind::TruncateFrame)).is_some()
}

/// Should the next protocol write stall mid-frame, and for how long?
/// (Wire-protocol injection point.)
#[must_use]
pub fn injected_slow_write(site_id: &str) -> Option<Duration> {
    match fire(site_id, |k| matches!(k, FaultKind::SlowWrite(_))) {
        Some(FaultKind::SlowWrite(d)) => Some(d),
        _ => None,
    }
}

/// Should the process be killed here? (Daemon crash-drill injection
/// point; the caller logs and then calls `std::process::abort()`.)
#[must_use]
pub fn injected_kill(site_id: &str) -> bool {
    fire(site_id, |k| matches!(k, FaultKind::Kill)).is_some()
}

/// Should the probed cache entry be evicted just before the probe?
/// (Daemon admission injection point — the eviction race.)
#[must_use]
pub fn injected_cache_evict(site_id: &str) -> bool {
    fire(site_id, |k| matches!(k, FaultKind::EvictCache)).is_some()
}

/// FNV-1a — the repo's stable non-cryptographic hash, duplicated here
/// so the harness stays dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministically corrupts the file at `path`: even seeds flip a
/// byte at a seed-derived offset, odd seeds truncate to half length.
/// A missing or empty file is left alone (nothing to corrupt).
///
/// # Errors
///
/// Propagates filesystem errors other than the file not existing.
pub fn corrupt_file(path: &Path, seed: u64) -> std::io::Result<()> {
    let mut bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if bytes.is_empty() {
        return Ok(());
    }
    let h = fnv1a(&seed.to_le_bytes()) ^ fnv1a(path.to_string_lossy().as_bytes());
    // Deliberate damage: non-atomic writes are the whole point here.
    if seed.is_multiple_of(2) {
        let at = (h as usize) % bytes.len();
        bytes[at] ^= 0x3f; // guaranteed to change the byte
        std::fs::write(path, bytes) // lint: allow(raw-fs-write)
    } else {
        bytes.truncate(bytes.len() / 2);
        std::fs::write(path, bytes) // lint: allow(raw-fs-write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The armed plan is process-global; tests that arm it must not
    /// interleave. One mutex serializes them.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn parse_round_trips_every_kind() {
        let plan =
            FaultPlan::parse("panic@a; stall:250@b ;corrupt@c;trunc:1000@d;panicx2@e", 9).unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.faults.len(), 5);
        assert_eq!(plan.faults[0].kind, FaultKind::Panic);
        assert_eq!(
            plan.faults[1].kind,
            FaultKind::Stall(Duration::from_millis(250))
        );
        assert_eq!(plan.faults[2].kind, FaultKind::CorruptCache);
        assert_eq!(plan.faults[3].kind, FaultKind::TruncateTrace(1000));
        assert_eq!(plan.faults[4].times, 2);
        assert_eq!(plan.faults[1].target, "b");
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        assert!(FaultPlan::parse("panic", 0).is_err());
        assert!(FaultPlan::parse("wedge@x", 0).is_err());
        assert!(FaultPlan::parse("stall@x", 0).is_err());
        assert!(FaultPlan::parse("trunc:abc@x", 0).is_err());
        assert!(FaultPlan::parse("slowloris@x", 0).is_err());
    }

    #[test]
    fn parse_round_trips_protocol_kinds() {
        let plan = FaultPlan::parse("dropconnx1@srv;truncframe@peer;slowloris:250@cli", 3).unwrap();
        assert_eq!(plan.faults[0].kind, FaultKind::DropConnection);
        assert_eq!(plan.faults[0].times, 1);
        assert_eq!(plan.faults[1].kind, FaultKind::TruncateFrame);
        assert_eq!(
            plan.faults[2].kind,
            FaultKind::SlowWrite(Duration::from_millis(250))
        );
        assert_eq!(plan.faults[2].target, "cli");
    }

    #[test]
    fn parse_round_trips_durability_kinds() {
        let plan = FaultPlan::parse("killx1@bw-server worker;evictx2@bw-server admit", 5).unwrap();
        assert_eq!(plan.faults[0].kind, FaultKind::Kill);
        assert_eq!(plan.faults[0].times, 1);
        assert_eq!(plan.faults[1].kind, FaultKind::EvictCache);
        assert_eq!(plan.faults[1].times, 2);
        assert_eq!(plan.faults[1].target, "bw-server admit");
    }

    #[test]
    fn evict_probe_fires_and_respects_budget() {
        let _gate = serial();
        arm(FaultPlan::new(0).fault_times(FaultKind::EvictCache, "bw-server admit", 1));
        assert!(!injected_cache_evict("bw-server worker"));
        assert!(!injected_kill("bw-server admit"), "kill not armed");
        assert!(injected_cache_evict("bw-server admit"));
        assert!(
            !injected_cache_evict("bw-server admit"),
            "budget of 1 exhausted"
        );
        let log = disarm();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, "evict");
    }

    #[test]
    fn protocol_probes_fire_and_respect_budget() {
        let _gate = serial();
        arm(FaultPlan::new(0)
            .fault_times(FaultKind::DropConnection, "bw-server", 1)
            .fault(FaultKind::SlowWrite(Duration::from_millis(5)), "bw-client"));
        assert!(!injected_conn_drop("bw-client submit"));
        assert!(injected_conn_drop("bw-server conn 127.0.0.1:9"));
        assert!(
            !injected_conn_drop("bw-server conn 127.0.0.1:9"),
            "budget of 1 exhausted"
        );
        assert_eq!(
            injected_slow_write("bw-client submit"),
            Some(Duration::from_millis(5))
        );
        assert!(
            !injected_frame_truncation("anything"),
            "no truncframe fault armed"
        );
        let log = disarm();
        assert_eq!(log[0].kind, "dropconn");
        assert_eq!(log[1].kind, "slowloris");
    }

    #[test]
    fn targeting_matches_by_substring_and_respects_budget() {
        let _gate = serial();
        arm(FaultPlan::new(1).fault_times(FaultKind::Panic, "gzip", 2));
        assert!(!injected_panic("Bim_4k / gcc"));
        assert!(injected_panic("Bim_4k / gzip"));
        assert!(injected_panic("Gsh_1_16k_12 / gzip"));
        assert!(!injected_panic("Bim_8k / gzip"), "budget of 2 exhausted");
        let log = disarm();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].kind, "panic");
        assert_eq!(log[0].id, "Bim_4k / gzip");
    }

    #[test]
    fn ambient_scope_targets_without_explicit_id() {
        let _gate = serial();
        arm(FaultPlan::new(1).fault(FaultKind::TruncateTrace(5), "quick"));
        let inside = scope("gzip-quick replay", || injected_trace_truncation(""));
        assert_eq!(inside, Some(5));
        assert_eq!(injected_trace_truncation("other"), None);
        disarm();
    }

    #[test]
    fn scope_pops_even_when_the_closure_panics() {
        let _gate = serial();
        let result = std::panic::catch_unwind(|| scope("doomed", || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(ambient_scope(), None, "guard must pop on unwind");
    }

    #[test]
    fn disarmed_harness_injects_nothing() {
        let _gate = serial();
        disarm();
        assert!(!injected_panic("anything"));
        assert!(injected_stall("anything").is_none());
        assert!(!is_armed());
    }

    #[test]
    fn corrupt_file_is_deterministic_and_changes_bytes() {
        let dir = std::env::temp_dir().join(format!("bw-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("victim.json");
        let original = b"{\"k\": \"0123456789abcdef\"}".to_vec();

        std::fs::write(&p, &original).unwrap();
        corrupt_file(&p, 2).unwrap();
        let flipped_a = std::fs::read(&p).unwrap();
        assert_ne!(flipped_a, original);
        assert_eq!(flipped_a.len(), original.len(), "even seed flips in place");

        std::fs::write(&p, &original).unwrap();
        corrupt_file(&p, 2).unwrap();
        assert_eq!(
            std::fs::read(&p).unwrap(),
            flipped_a,
            "same seed, same bytes"
        );

        std::fs::write(&p, &original).unwrap();
        corrupt_file(&p, 3).unwrap();
        let truncated = std::fs::read(&p).unwrap();
        assert_eq!(truncated.len(), original.len() / 2, "odd seed truncates");

        corrupt_file(&dir.join("missing.json"), 2).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_parsing_is_optional() {
        // BW_FAULT is unset in the test environment.
        if std::env::var("BW_FAULT").is_err() {
            assert!(FaultPlan::from_env().unwrap().is_none());
        }
    }
}
