//! Cycle-level out-of-order core model for the `branchwatt` simulator.
//!
//! A from-scratch reimplementation of the machine the paper simulates:
//! SimpleScalar's `sim-outorder` timing model with Wattch's power
//! instrumentation and the paper's own modifications (Section 2.1):
//!
//! * the pipeline is lengthened by three extra stages between decode
//!   and issue (8-cycle pipeline, like the Alpha 21264's renaming and
//!   enqueue costs);
//! * branch history and the return-address stack are updated
//!   speculatively and repaired on squashes;
//! * the fetch engine respects cache-line boundaries; and — most
//!   importantly for the power results —
//! * **a direction-predictor and BTB lookup is charged for every cycle
//!   in which the fetch engine is active**, because the predictor
//!   structures are accessed in parallel with the I-cache before
//!   anything is known about the fetched instructions.
//!
//! The machine configuration (Table 1) matches an Alpha 21264 as much
//! as possible: RUU = 80, LSQ = 40, 6-wide issue (4 int + 2 FP),
//! 64 KB/2-way L1s, 2 MB/4-way L2, 128-entry TLB, 2048-entry 2-way
//! BTB, 32-entry RAS.
//!
//! Section 4's techniques are built in: banking (power-model switch),
//! the PPD with both timing scenarios (fetch-engine gating of predictor
//! and BTB lookups), and pipeline gating with "both strong" confidence
//! estimation.
//!
//! # Examples
//!
//! ```
//! use bw_uarch::{Machine, UarchConfig};
//! use bw_predictors::PredictorConfig;
//! use bw_workload::benchmark;
//!
//! let model = benchmark("gzip").unwrap();
//! let program = model.build_program(1);
//! let cfg = UarchConfig::alpha21264_like();
//! let mut m = Machine::new(&cfg, &program, model, 1, PredictorConfig::bimodal(4096));
//! m.run(20_000);
//! assert!(m.stats().ipc() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "audit")]
pub mod audit;
mod backend;
mod cache;
mod config;
mod inflight;
mod machine;
mod stats;

pub use cache::{Cache, CacheConfig, Tlb, TlbConfig};
pub use config::{ConfidenceKind, GatingConfig, TargetPredictor, UarchConfig};
pub use machine::Machine;
pub use stats::SimStats;

#[cfg(test)]
mod tests;
