//! Machine configuration (Table 1 of the paper).

use crate::cache::{CacheConfig, TlbConfig};
use bw_power::PpdScenario;

/// Which confidence estimator drives pipeline gating.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ConfidenceKind {
    /// The paper's "both strong" estimate: a branch is high-confidence
    /// when both hybrid components agree. Free, but only meaningful
    /// for hybrid predictors (other organizations never gate).
    BothStrong,
    /// A standalone JRS miss-distance-counter table (1K x 4-bit,
    /// threshold 8) — the separate estimator the paper's Section 4.3
    /// flags as warranting further study. Works for any predictor.
    Jrs,
}

/// Which structure supplies fetch targets for taken CTIs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TargetPredictor {
    /// A separate set-associative BTB accessed in parallel with the
    /// I-cache (the paper's Table 1 machine).
    Btb,
    /// A per-I-cache-line next-line predictor, as in the real Alpha
    /// 21264 (which has no BTB). Much smaller; direct-CTI targets are
    /// verified against decode with a misfetch bubble on disagreement.
    NextLine,
}

/// Pipeline-gating (speculation control) configuration — Section 4.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GatingConfig {
    /// The threshold `N`: fetch stalls while more than `N`
    /// low-confidence branches are in flight. The paper evaluates
    /// N ∈ {0, 1, 2}.
    pub threshold: u32,
    /// The confidence estimator in use.
    pub estimator: ConfidenceKind,
}

/// Full machine configuration.
///
/// Defaults ([`UarchConfig::alpha21264_like`]) match the paper's
/// Table 1. Section-4 techniques (banking, PPD, gating) are options on
/// top.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UarchConfig {
    /// Instructions fetched per cycle (bounded by the cache line and
    /// taken branches).
    pub fetch_width: u32,
    /// Fetch-buffer entries between fetch and decode.
    pub fetch_buffer: u32,
    /// Decode/dispatch width.
    pub decode_width: u32,
    /// Extra latch stages between decode and issue (the paper adds 3).
    pub extra_rename_stages: u32,
    /// Issue width (total).
    pub issue_width: u32,
    /// Integer issue bandwidth per cycle.
    pub int_issue: u32,
    /// FP issue bandwidth per cycle.
    pub fp_issue: u32,
    /// Commit width.
    pub commit_width: u32,
    /// Register update unit (instruction window) entries.
    pub ruu_size: u32,
    /// Load/store queue entries.
    pub lsq_size: u32,
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_mul: u32,
    /// FP ALUs.
    pub fp_alu: u32,
    /// FP multiply/divide units.
    pub fp_mul: u32,
    /// Memory ports.
    pub mem_ports: u32,
    /// L1 I-cache.
    pub l1i: CacheConfig,
    /// L1 D-cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory latency, cycles.
    pub mem_latency: u32,
    /// Data TLB.
    pub tlb: TlbConfig,
    /// Fetch-target structure (BTB or 21264-style next-line predictor).
    pub target_predictor: TargetPredictor,
    /// BTB entries.
    pub btb_entries: u64,
    /// BTB associativity.
    pub btb_assoc: u32,
    /// Return-address-stack entries.
    pub ras_entries: usize,
    /// Extra fetch bubble on a BTB miss for a direct taken CTI (the
    /// decode stage supplies the target).
    pub misfetch_penalty: u32,
    /// Update branch history speculatively at fetch with squash repair
    /// (the paper's modelling, after Skadron et al.). When `false`,
    /// history is updated only at commit — the stale-history baseline.
    pub speculative_history: bool,
    /// Pipeline gating, if enabled.
    pub gating: Option<GatingConfig>,
    /// Prediction probe detector, if enabled, with its timing
    /// scenario.
    pub ppd: Option<PpdScenario>,
}

impl UarchConfig {
    /// The paper's baseline configuration (Table 1).
    #[must_use]
    pub fn alpha21264_like() -> Self {
        UarchConfig {
            fetch_width: 8,
            fetch_buffer: 8,
            decode_width: 6,
            extra_rename_stages: 3,
            issue_width: 6,
            int_issue: 4,
            fp_issue: 2,
            commit_width: 6,
            ruu_size: 80,
            lsq_size: 40,
            int_alu: 4,
            int_mul: 1,
            fp_alu: 2,
            fp_mul: 1,
            mem_ports: 2,
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                assoc: 2,
                line_bytes: 32,
                hit_latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                assoc: 2,
                line_bytes: 32,
                hit_latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                assoc: 4,
                line_bytes: 32,
                hit_latency: 11,
            },
            mem_latency: 100,
            tlb: TlbConfig {
                entries: 128,
                page_bytes: 4096,
                miss_penalty: 30,
            },
            target_predictor: TargetPredictor::Btb,
            btb_entries: 2048,
            btb_assoc: 2,
            ras_entries: 32,
            misfetch_penalty: 2,
            speculative_history: true,
            gating: None,
            ppd: None,
        }
    }

    /// The same machine with "both strong" pipeline gating at
    /// threshold `n`.
    #[must_use]
    pub fn with_gating(mut self, n: u32) -> Self {
        self.gating = Some(GatingConfig {
            threshold: n,
            estimator: ConfidenceKind::BothStrong,
        });
        self
    }

    /// The same machine gated by a standalone JRS confidence estimator.
    #[must_use]
    pub fn with_jrs_gating(mut self, n: u32) -> Self {
        self.gating = Some(GatingConfig {
            threshold: n,
            estimator: ConfidenceKind::Jrs,
        });
        self
    }

    /// The same machine with a PPD in the given timing scenario.
    #[must_use]
    pub fn with_ppd(mut self, scenario: PpdScenario) -> Self {
        self.ppd = Some(scenario);
        self
    }

    /// The same machine with commit-time (non-speculative) history
    /// update.
    #[must_use]
    pub fn with_commit_time_history(mut self) -> Self {
        self.speculative_history = false;
        self
    }

    /// The same machine with a 21264-style next-line predictor in
    /// place of the BTB.
    #[must_use]
    pub fn with_next_line_predictor(mut self) -> Self {
        self.target_predictor = TargetPredictor::NextLine;
        self
    }
}

impl Default for UarchConfig {
    fn default() -> Self {
        UarchConfig::alpha21264_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = UarchConfig::alpha21264_like();
        assert_eq!(c.ruu_size, 80);
        assert_eq!(c.lsq_size, 40);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.int_issue, 4);
        assert_eq!(c.fp_issue, 2);
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l1d.assoc, 2);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l2.hit_latency, 11);
        assert_eq!(c.mem_latency, 100);
        assert_eq!(c.tlb.entries, 128);
        assert_eq!(c.tlb.miss_penalty, 30);
        assert_eq!(c.btb_entries, 2048);
        assert_eq!(c.btb_assoc, 2);
        assert_eq!(c.ras_entries, 32);
        assert_eq!(c.extra_rename_stages, 3);
        assert!(c.gating.is_none());
        assert!(c.ppd.is_none());
        assert!(c.speculative_history);
    }

    #[test]
    fn builders_set_options() {
        let c = UarchConfig::default().with_gating(1);
        assert_eq!(
            c.gating,
            Some(GatingConfig {
                threshold: 1,
                estimator: ConfidenceKind::BothStrong
            })
        );
        let c = UarchConfig::default().with_jrs_gating(0);
        assert_eq!(c.gating.unwrap().estimator, ConfidenceKind::Jrs);
        let c = UarchConfig::default().with_ppd(PpdScenario::Two);
        assert_eq!(c.ppd, Some(PpdScenario::Two));
    }
}
