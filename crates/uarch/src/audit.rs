//! The runtime sanitizer (the `audit` feature).
//!
//! When a [`Machine`] has auditing enabled
//! ([`Machine::enable_audit`]), an invariant [`Registry`] observes the
//! pipeline at three boundaries — every cycle, every commit, and every
//! misprediction recovery — and records a [`Violation`] whenever the
//! simulator's bookkeeping contradicts itself. The checks exist
//! because the paper's headline numbers do: a mis-accounted predictor
//! access or a broken recovery path silently shifts every figure, so
//! each invariant maps to a claim the reproduction depends on.
//!
//! The sanitizer is strictly **observation-only**: it reads machine
//! state after each boundary and never writes any — a run with
//! auditing enabled commits the same instructions, mispredicts the
//! same branches, and reports the same energy as one without (the
//! differential tests below pin this down).
//!
//! Invariants:
//!
//! | name | boundary | guards |
//! |------|----------|--------|
//! | `in-order-commit` | commit | retirement order and correct-path purity (IPC validity) |
//! | `occupancy-bounds` | cycle | RUU/LSQ never exceed Table 1's 80/40 |
//! | `window-ordering` | cycle | the RUU stays sequence-sorted (issue/squash correctness) |
//! | `history-restore` | recovery | speculative GHR equals the oracle history after repair |
//! | `counter-range` | cycle + recovery | every saturating counter stays representable |
//! | `ppd-neutrality` | cycle | PPD gating never suppresses a needed lookup |
//! | `energy-conservation` | cycle | chip total = Σ per-unit components within 1e-9 |

pub use bw_audit::Violation;
use bw_audit::{Boundary, Invariant, Registry};
use bw_power::audit::EnergyLedger;
use bw_power::EnergyReport;
use bw_types::Seq;

use crate::machine::Machine;

/// How many low GHR bits the history-restore invariant compares — the
/// shortest global history any configured predictor keeps.
const GHR_CMP_MASK: u64 = 0xfff;

/// Full counter-table scans are expensive; run them at every recovery
/// plus once per this many cycles.
const COUNTER_SCAN_INTERVAL: u64 = 8192;

/// A read-only snapshot of machine state at one audit boundary.
///
/// Fields that are meaningless at a given boundary are `None`; an
/// invariant sees every boundary's view and checks only what is
/// present.
#[derive(Clone, Debug, Default)]
pub struct AuditView {
    /// Instructions resident in the RUU.
    pub ruu_len: usize,
    /// Configured RUU capacity.
    pub ruu_cap: usize,
    /// Entries resident in the LSQ.
    pub lsq_len: usize,
    /// Configured LSQ capacity.
    pub lsq_cap: usize,
    /// `true` if RUU sequence numbers are strictly increasing.
    pub ruu_seq_ordered: bool,
    /// Sequence number of the instruction that just retired (commit
    /// boundary only).
    pub commit_seq: Option<Seq>,
    /// Whether the retiring instruction was fetched on the correct
    /// path.
    pub commit_on_correct_path: bool,
    /// The predictor's speculative global history (recovery boundary,
    /// speculative-history configs only).
    pub ghr: Option<u64>,
    /// The oracle thread's architectural global history.
    pub oracle_history: Option<u64>,
    /// Result of a full predictor counter-table scan, when one ran.
    pub counters_in_range: Option<bool>,
    /// A conditional branch was fetched this cycle without a
    /// direction-predictor lookup being charged.
    pub fetched_cond_uncharged: bool,
    /// A CTI was fetched this cycle without a BTB/NLP lookup being
    /// charged.
    pub fetched_cti_uncharged: bool,
    /// The chip's cumulative energy report (cycle boundary only).
    pub energy: Option<EnergyReport>,
}

/// Commits must retire in strictly increasing sequence order and only
/// ever from the correct path — otherwise IPC and accuracy counts are
/// meaningless.
struct InOrderCommit {
    last_seq: Option<Seq>,
}

impl Invariant<AuditView> for InOrderCommit {
    fn name(&self) -> &'static str {
        "in-order-commit"
    }
    fn boundary(&self) -> Boundary {
        Boundary::Commit
    }
    fn check(&mut self, v: &AuditView) -> Result<(), String> {
        let Some(seq) = v.commit_seq else {
            return Ok(());
        };
        if !v.commit_on_correct_path {
            return Err(format!("wrong-path instruction seq {seq} retired"));
        }
        if let Some(last) = self.last_seq {
            if seq <= last {
                return Err(format!("seq {seq} retired after seq {last}"));
            }
        }
        self.last_seq = Some(seq);
        Ok(())
    }
}

/// The RUU and LSQ must respect Table 1's capacities (80/40); an
/// overflow means dispatch stopped modelling structural stalls.
struct OccupancyBounds;

impl Invariant<AuditView> for OccupancyBounds {
    fn name(&self) -> &'static str {
        "occupancy-bounds"
    }
    fn boundary(&self) -> Boundary {
        Boundary::Cycle
    }
    fn check(&mut self, v: &AuditView) -> Result<(), String> {
        if v.ruu_len > v.ruu_cap {
            return Err(format!("RUU holds {} of {} entries", v.ruu_len, v.ruu_cap));
        }
        if v.lsq_len > v.lsq_cap {
            return Err(format!("LSQ holds {} of {} entries", v.lsq_len, v.lsq_cap));
        }
        Ok(())
    }
}

/// The RUU must stay sorted by sequence number; squash and dispatch
/// both rely on it (binary-search wakeup, tail-drain squash).
struct WindowOrdering;

impl Invariant<AuditView> for WindowOrdering {
    fn name(&self) -> &'static str {
        "window-ordering"
    }
    fn boundary(&self) -> Boundary {
        Boundary::Cycle
    }
    fn check(&mut self, v: &AuditView) -> Result<(), String> {
        if v.ruu_seq_ordered {
            Ok(())
        } else {
            Err("RUU sequence numbers are not strictly increasing".to_string())
        }
    }
}

/// After misprediction recovery under speculative history update, the
/// predictor's repaired GHR must equal the oracle's architectural
/// history — the Skadron-style repair scheme the paper's accuracy
/// numbers assume.
struct HistoryRestore;

impl Invariant<AuditView> for HistoryRestore {
    fn name(&self) -> &'static str {
        "history-restore"
    }
    fn boundary(&self) -> Boundary {
        Boundary::Recovery
    }
    fn check(&mut self, v: &AuditView) -> Result<(), String> {
        let (Some(ghr), Some(oracle)) = (v.ghr, v.oracle_history) else {
            return Ok(());
        };
        if ghr & GHR_CMP_MASK == oracle & GHR_CMP_MASK {
            Ok(())
        } else {
            Err(format!(
                "speculative GHR {:012b} != architectural history {:012b} after recovery",
                ghr & GHR_CMP_MASK,
                oracle & GHR_CMP_MASK
            ))
        }
    }
}

/// Every saturating counter must stay within its representable range.
struct CounterRange;

impl Invariant<AuditView> for CounterRange {
    fn name(&self) -> &'static str {
        "counter-range"
    }
    fn boundary(&self) -> Boundary {
        Boundary::Any
    }
    fn check(&mut self, v: &AuditView) -> Result<(), String> {
        match v.counters_in_range {
            Some(false) => Err("a saturating counter left its representable range".to_string()),
            _ => Ok(()),
        }
    }
}

/// PPD gating must be accuracy-neutral: whenever a conditional branch
/// (or any CTI) is actually fetched, the direction predictor (or
/// target structure) must have been looked up that cycle — the
/// conservatism fallback guarantees it, and the paper's "no accuracy
/// loss" claim depends on it.
struct PpdNeutrality;

impl Invariant<AuditView> for PpdNeutrality {
    fn name(&self) -> &'static str {
        "ppd-neutrality"
    }
    fn boundary(&self) -> Boundary {
        Boundary::Cycle
    }
    fn check(&mut self, v: &AuditView) -> Result<(), String> {
        if v.fetched_cond_uncharged {
            return Err(
                "conditional branch fetched with the direction predictor gated".to_string(),
            );
        }
        if v.fetched_cti_uncharged {
            return Err("CTI fetched with the target structure gated".to_string());
        }
        Ok(())
    }
}

/// Wraps [`EnergyLedger`] (the bw-power half of the sanitizer) over
/// the cycle view.
struct EnergyConservation {
    ledger: EnergyLedger,
}

impl Invariant<AuditView> for EnergyConservation {
    fn name(&self) -> &'static str {
        "energy-conservation"
    }
    fn boundary(&self) -> Boundary {
        Boundary::Cycle
    }
    fn check(&mut self, v: &AuditView) -> Result<(), String> {
        match &v.energy {
            Some(report) => self.ledger.observe(report),
            None => Ok(()),
        }
    }
}

/// Per-machine sanitizer state: the registry plus the cycle-start
/// sequence watermark used to find instructions fetched this cycle.
pub struct AuditState {
    pub(crate) registry: Registry<AuditView>,
    pub(crate) seq_at_cycle_start: Seq,
}

impl AuditState {
    fn new(benchmark: &str) -> Self {
        let mut registry = Registry::new(benchmark);
        registry.register(Box::new(InOrderCommit { last_seq: None }));
        registry.register(Box::new(OccupancyBounds));
        registry.register(Box::new(WindowOrdering));
        registry.register(Box::new(HistoryRestore));
        registry.register(Box::new(CounterRange));
        registry.register(Box::new(PpdNeutrality));
        registry.register(Box::new(EnergyConservation {
            ledger: EnergyLedger::new(),
        }));
        AuditState {
            registry,
            seq_at_cycle_start: 0,
        }
    }
}

impl<S: bw_workload::InstSource> Machine<'_, S> {
    /// Turns the runtime sanitizer on for the rest of this machine's
    /// life. `benchmark` labels any violations.
    ///
    /// Enable before [`warmup`](Machine::warmup): warmup is trace-style
    /// (no cycles), so auditing starts with the first real
    /// [`tick`](Machine::tick).
    pub fn enable_audit(&mut self, benchmark: &str) {
        self.audit = Some(Box::new(AuditState::new(benchmark)));
    }

    /// `true` if auditing is enabled and no invariant has failed.
    /// `None` when auditing is off.
    #[must_use]
    pub fn audit_clean(&self) -> Option<bool> {
        self.audit.as_ref().map(|a| a.registry.is_clean())
    }

    /// One-line audit summary, when auditing is enabled.
    #[must_use]
    pub fn audit_summary(&self) -> Option<String> {
        self.audit.as_ref().map(|a| a.registry.summary())
    }

    /// Consumes the audit state, returning recorded violations (empty
    /// if auditing was off or clean).
    pub fn take_audit_violations(&mut self) -> Vec<Violation> {
        self.audit
            .take()
            .map(|a| a.registry.into_violations())
            .unwrap_or_default()
    }

    /// Occupancy/ordering fields shared by every boundary's view.
    fn audit_base_view(&self) -> AuditView {
        AuditView {
            ruu_len: self.ruu.len(),
            ruu_cap: self.cfg.ruu_size as usize,
            lsq_len: self.lsq.len(),
            lsq_cap: self.cfg.lsq_size as usize,
            ruu_seq_ordered: self
                .ruu
                .iter()
                .zip(self.ruu.iter().skip(1))
                .all(|(a, b)| a.fi.seq < b.fi.seq),
            ..AuditView::default()
        }
    }

    /// Records the cycle-start sequence watermark (tick entry hook).
    pub(crate) fn audit_begin_cycle(&mut self) {
        if let Some(a) = &mut self.audit {
            a.seq_at_cycle_start = self.next_seq;
        }
    }

    /// Cycle-boundary checks (end-of-tick hook, after power
    /// accounting).
    pub(crate) fn audit_cycle_check(&mut self) {
        let Some(mut a) = self.audit.take() else {
            return;
        };
        let mut view = self.audit_base_view();
        view.energy = Some(self.power.report());
        // Instructions fetched this cycle are still at the back of the
        // fetch queue (dispatch ran before fetch). If any of them is a
        // branch, the matching lookup must have been charged this
        // cycle.
        let mut cond_now = false;
        let mut cti_now = false;
        for fi in self.fetch_queue.iter().rev() {
            if fi.seq < a.seq_at_cycle_start {
                break;
            }
            cond_now |= fi.inst.is_cond_branch();
            cti_now |= fi.inst.is_cti();
        }
        view.fetched_cond_uncharged = cond_now && self.bact.dir_lookups == 0;
        view.fetched_cti_uncharged = cti_now && self.bact.btb_lookups == 0;
        if self.cycle.is_multiple_of(COUNTER_SCAN_INTERVAL) {
            view.counters_in_range = Some(self.predictor.counters_in_range());
        }
        a.registry.check_at(Boundary::Cycle, self.cycle, &view);
        self.audit = Some(a);
    }

    /// Commit-boundary checks (one call per retired instruction).
    pub(crate) fn audit_commit_check(&mut self, seq: Seq, on_correct_path: bool) {
        let Some(mut a) = self.audit.take() else {
            return;
        };
        let mut view = self.audit_base_view();
        view.commit_seq = Some(seq);
        view.commit_on_correct_path = on_correct_path;
        a.registry.check_at(Boundary::Commit, self.cycle, &view);
        self.audit = Some(a);
    }

    /// Recovery-boundary checks (after squash + history repair).
    pub(crate) fn audit_recovery_check(&mut self) {
        let Some(mut a) = self.audit.take() else {
            return;
        };
        let mut view = self.audit_base_view();
        if self.cfg.speculative_history {
            view.ghr = self.predictor.debug_ghr();
            view.oracle_history = Some(self.source.global_history());
        }
        view.counters_in_range = Some(self.predictor.counters_in_range());
        a.registry.check_at(Boundary::Recovery, self.cycle, &view);
        self.audit = Some(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UarchConfig;
    use bw_power::PpdScenario;
    use bw_predictors::{HybridConfig, PredictorConfig};
    use bw_workload::benchmark;

    fn audited_run(cfg: &UarchConfig, pred: PredictorConfig, seed: u64) -> Machine<'static> {
        let model = benchmark("gzip").unwrap();
        let program = Box::leak(Box::new(model.build_program(seed)));
        let mut m = Machine::new(cfg, program, model, seed, pred);
        m.enable_audit("gzip");
        m.warmup(20_000);
        m.run(30_000);
        m
    }

    #[test]
    fn baseline_machine_runs_clean() {
        let cfg = UarchConfig::alpha21264_like();
        let m = audited_run(&cfg, PredictorConfig::gshare(16 * 1024, 12), 7);
        assert_eq!(
            m.audit_clean(),
            Some(true),
            "audit: {}",
            m.audit_summary().unwrap()
        );
    }

    #[test]
    fn ppd_machine_runs_clean() {
        // The accuracy-neutrality invariant matters most when the PPD
        // actually gates lookups.
        let cfg = UarchConfig::alpha21264_like().with_ppd(PpdScenario::One);
        let mut m = audited_run(
            &cfg,
            PredictorConfig::Hybrid(HybridConfig::alpha_21264()),
            11,
        );
        assert!(m.stats().ppd_dir_gated > 0, "PPD never gated — test inert");
        assert_eq!(
            m.audit_clean(),
            Some(true),
            "audit: {}",
            m.audit_summary().unwrap()
        );
        assert!(m.take_audit_violations().is_empty());
        assert_eq!(m.audit_clean(), None, "state consumed");
    }

    #[test]
    fn audit_is_observation_only() {
        // Identical stats and energy with the sanitizer on and off.
        let model = benchmark("vortex").unwrap();
        let program = model.build_program(3);
        let cfg = UarchConfig::alpha21264_like();
        let run = |audit: bool| {
            let mut m = Machine::new(
                &cfg,
                &program,
                model,
                3,
                PredictorConfig::bimodal(16 * 1024),
            );
            if audit {
                m.enable_audit("vortex");
            }
            m.warmup(20_000);
            m.run(20_000);
            (*m.stats(), m.power_report())
        };
        let (stats_off, energy_off) = run(false);
        let (stats_on, energy_on) = run(true);
        assert_eq!(stats_off, stats_on);
        assert_eq!(energy_off, energy_on);
    }

    #[test]
    fn violations_surface_with_details() {
        // Drive the registry directly with a corrupt view to prove the
        // plumbing reports rather than panics.
        let mut a = AuditState::new("synthetic");
        let view = AuditView {
            ruu_len: 99,
            ruu_cap: 80,
            lsq_len: 0,
            lsq_cap: 40,
            ruu_seq_ordered: false,
            counters_in_range: Some(false),
            fetched_cond_uncharged: true,
            ..AuditView::default()
        };
        a.registry.check_at(Boundary::Cycle, 42, &view);
        let names: Vec<_> = a
            .registry
            .violations()
            .iter()
            .map(|v| v.invariant)
            .collect();
        assert!(names.contains(&"occupancy-bounds"));
        assert!(names.contains(&"window-ordering"));
        assert!(names.contains(&"counter-range"));
        assert!(names.contains(&"ppd-neutrality"));
        assert!(a.registry.violations().iter().all(|v| v.cycle == 42));
    }

    #[test]
    fn history_restore_detects_divergence() {
        let mut a = AuditState::new("synthetic");
        let view = AuditView {
            ruu_seq_ordered: true,
            ghr: Some(0b1010),
            oracle_history: Some(0b1011),
            ..AuditView::default()
        };
        a.registry.check_at(Boundary::Recovery, 7, &view);
        assert_eq!(a.registry.total_violations(), 1);
        assert_eq!(a.registry.violations()[0].invariant, "history-restore");
    }
}
