//! Simulation statistics.

/// Counters accumulated over a simulation run.
///
/// Everything the paper's figures need: IPC (committed instructions
/// per cycle), direction-prediction accuracy, fetch/speculation volume
/// (for pipeline gating's "total instructions"), inter-branch
/// distances (Figure 14), and PPD gating effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed (architecturally retired).
    pub committed: u64,
    /// Instructions fetched (correct + wrong path).
    pub fetched: u64,
    /// Instructions issued to functional units (correct + wrong path).
    pub executed: u64,
    /// Conditional branches committed.
    pub cond_committed: u64,
    /// Conditional branches committed whose direction was predicted
    /// correctly.
    pub cond_correct: u64,
    /// Committed CTIs of any kind.
    pub cti_committed: u64,
    /// Committed CTIs whose *target* (next fetch PC) was predicted
    /// correctly.
    pub cti_addr_correct: u64,
    /// Misfetches: taken CTIs whose target the front end could not
    /// supply in time (BTB miss or next-line disagreement), costing a
    /// fetch bubble but no squash.
    pub misfetches: u64,
    /// Direction mispredictions that caused a squash.
    pub squashes: u64,
    /// Instructions squashed.
    pub squashed_insts: u64,
    /// Cycles the fetch engine was active (the predictor/BTB charge
    /// unit of the paper's modified Wattch).
    pub fetch_active_cycles: u64,
    /// Cycles fetch was stalled by pipeline gating.
    pub gated_cycles: u64,
    /// Fetch cycles in which the PPD suppressed the direction-predictor
    /// lookup.
    pub ppd_dir_gated: u64,
    /// Fetch cycles in which the PPD suppressed the BTB lookup.
    pub ppd_btb_gated: u64,
    /// Sum of distances (in committed instructions) between successive
    /// committed conditional branches.
    pub cond_distance_sum: u64,
    /// Sum of distances between successive committed CTIs.
    pub cti_distance_sum: u64,
    /// I-cache misses observed at fetch.
    pub icache_misses: u64,
    /// D-cache misses observed at execute.
    pub dcache_misses: u64,
}

impl SimStats {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch direction-prediction accuracy.
    #[must_use]
    pub fn direction_accuracy(&self) -> f64 {
        if self.cond_committed == 0 {
            1.0
        } else {
            self.cond_correct as f64 / self.cond_committed as f64
        }
    }

    /// Committed conditional-branch frequency.
    #[must_use]
    pub fn cond_branch_freq(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.cond_committed as f64 / self.committed as f64
        }
    }

    /// Committed unconditional-CTI frequency.
    #[must_use]
    pub fn uncond_freq(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            (self.cti_committed - self.cond_committed) as f64 / self.committed as f64
        }
    }

    /// Mean committed instructions between conditional branches
    /// (Figure 14a).
    #[must_use]
    pub fn avg_cond_distance(&self) -> f64 {
        if self.cond_committed == 0 {
            0.0
        } else {
            self.cond_distance_sum as f64 / self.cond_committed as f64
        }
    }

    /// Mean committed instructions between CTIs (Figure 14b).
    #[must_use]
    pub fn avg_cti_distance(&self) -> f64 {
        if self.cti_committed == 0 {
            0.0
        } else {
            self.cti_distance_sum as f64 / self.cti_committed as f64
        }
    }

    /// Fraction of fetch-active cycles whose direction-predictor
    /// lookup the PPD eliminated.
    #[must_use]
    pub fn ppd_dir_gate_rate(&self) -> f64 {
        if self.fetch_active_cycles == 0 {
            0.0
        } else {
            self.ppd_dir_gated as f64 / self.fetch_active_cycles as f64
        }
    }

    /// Fraction of fetch-active cycles whose BTB lookup the PPD
    /// eliminated.
    #[must_use]
    pub fn ppd_btb_gate_rate(&self) -> f64 {
        if self.fetch_active_cycles == 0 {
            0.0
        } else {
            self.ppd_btb_gated as f64 / self.fetch_active_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 1000,
            committed: 1500,
            cond_committed: 100,
            cond_correct: 90,
            cti_committed: 150,
            cond_distance_sum: 1200,
            cti_distance_sum: 1500,
            fetch_active_cycles: 800,
            ppd_dir_gated: 400,
            ppd_btb_gated: 200,
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.direction_accuracy() - 0.9).abs() < 1e-12);
        assert!((s.cond_branch_freq() - 100.0 / 1500.0).abs() < 1e-12);
        assert!((s.uncond_freq() - 50.0 / 1500.0).abs() < 1e-12);
        assert!((s.avg_cond_distance() - 12.0).abs() < 1e-12);
        assert!((s.avg_cti_distance() - 10.0).abs() < 1e-12);
        assert!((s.ppd_dir_gate_rate() - 0.5).abs() < 1e-12);
        assert!((s.ppd_btb_gate_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.direction_accuracy(), 1.0);
        assert_eq!(s.avg_cond_distance(), 0.0);
        assert_eq!(s.ppd_dir_gate_rate(), 0.0);
    }
}
