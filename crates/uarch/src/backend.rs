//! Back-end stages: dispatch, issue, writeback (branch resolution and
//! squash), and commit.

use std::cmp::Reverse;

use bw_types::{Addr, CtiKind, OpClass, Seq};

use crate::inflight::{EntryState, FetchedInst, RuuEntry};
use crate::machine::Machine;

impl<S: bw_workload::InstSource> Machine<'_, S> {
    /// Finds the RUU index of the entry with sequence number `seq`.
    ///
    /// The RUU is ordered by strictly increasing `seq` but may contain
    /// gaps where squashed allocations used to be, so this is a binary
    /// search rather than an offset computation.
    fn entry_index(&self, seq: Seq) -> Option<usize> {
        let front = self.ruu.front()?.fi.seq;
        if seq < front {
            return None;
        }
        let mut lo = 0usize;
        let mut hi = self.ruu.len().min((seq - front + 1) as usize);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.ruu[mid].fi.seq.cmp(&seq) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Equal => return Some(mid),
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    /// `true` if the producer with sequence number `seq` has a result
    /// available (committed, squashed-gap, or completed in-window).
    fn producer_done(&self, seq: Seq) -> bool {
        match self.entry_index(seq) {
            None => true,
            Some(idx) => self.ruu[idx].state == EntryState::Completed,
        }
    }

    /// Commit stage: retire completed instructions in order.
    pub(crate) fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.ruu.front() else { break };
            if head.state != EntryState::Completed {
                break;
            }
            let entry = self.ruu.pop_front().expect("checked nonempty");
            debug_assert!(
                entry.fi.on_correct_path,
                "wrong-path instruction reached commit (seq {})",
                entry.fi.seq
            );
            if entry.is_mem() {
                debug_assert_eq!(self.lsq.front(), Some(&entry.fi.seq));
                self.lsq.pop_front();
                if entry.fi.inst.op == OpClass::Store {
                    // Stores write the D-cache at retirement.
                    let addr = entry.fi.data_addr.expect("stores have addresses");
                    self.act.dcache += 1;
                    if !self.dcache.access(addr, true).hit {
                        self.act.dcache2 += 1;
                        self.l2.access(addr, true);
                    }
                }
            }

            self.stats.committed += 1;
            self.committed_now += 1;

            if let Some(cti) = entry.fi.inst.cti {
                let branch = entry.fi.branch.expect("CTIs carry branch state");
                let actual = branch.actual.expect("correct-path CTIs resolved");
                self.stats.cti_committed += 1;
                self.stats.cti_distance_sum += self.stats.committed - self.last_cti_at;
                self.last_cti_at = self.stats.committed;
                if actual.next_pc == branch.predicted_next {
                    self.stats.cti_addr_correct += 1;
                }
                if cti.kind == CtiKind::CondBranch {
                    self.stats.cond_committed += 1;
                    self.stats.cond_distance_sum += self.stats.committed - self.last_cond_at;
                    self.last_cond_at = self.stats.committed;
                    let pred = branch
                        .prediction
                        .expect("conditional branches are predicted");
                    if pred.outcome == actual.outcome {
                        self.stats.cond_correct += 1;
                    }
                    self.predictor
                        .commit(entry.fi.inst.pc, actual.outcome, &pred);
                    if !self.cfg.speculative_history {
                        // Commit-time history update (the baseline the
                        // speculative scheme improves on).
                        self.predictor.spec_push(entry.fi.inst.pc, actual.outcome);
                    }
                    self.bact.dir_updates += 1;
                    if let Some(jrs) = &mut self.jrs {
                        jrs.update(
                            entry.fi.inst.pc,
                            pred.meta.ghist,
                            pred.outcome == actual.outcome,
                        );
                    }
                }
                if actual.outcome.is_taken() {
                    match &mut self.nlp {
                        Some(nlp) => nlp.train(entry.fi.inst.pc, actual.next_pc),
                        None => self.btb.update(entry.fi.inst.pc, actual.next_pc),
                    }
                    self.bact.btb_updates += 1;
                }
            }
            #[cfg(feature = "audit")]
            self.audit_commit_check(entry.fi.seq, entry.fi.on_correct_path);
        }
    }

    /// Writeback: drain due completions; resolve branches (squash +
    /// redirect on mispredicts).
    pub(crate) fn writeback(&mut self) {
        while let Some(&Reverse((cycle, seq))) = self.completions.peek() {
            if cycle > self.cycle {
                break;
            }
            self.completions.pop();
            let Some(idx) = self.entry_index(seq) else {
                continue;
            };
            let entry = &mut self.ruu[idx];
            if entry.state != EntryState::Issued || entry.completes_at != cycle {
                continue; // stale event from a squashed allocation
            }
            entry.state = EntryState::Completed;
            self.act.window += 1;
            self.act.resultbus += 1;
            self.act.regfile += 1;

            let fi = entry.fi;
            if let Some(branch) = fi.branch {
                if branch.low_conf {
                    self.low_conf_inflight = self.low_conf_inflight.saturating_sub(1);
                }
                if branch.mispredicted && fi.on_correct_path {
                    let actual = branch.actual.expect("correct-path branch resolved");
                    self.squash_younger_than(seq);
                    // Repair the offender's own speculative history and
                    // re-insert the architectural outcome.
                    if let (Some(ckpt), Some(pred)) = (branch.hist_ckpt, branch.prediction) {
                        let _ = pred;
                        self.predictor.repair(&ckpt);
                        self.predictor.spec_push(fi.inst.pc, actual.outcome);
                    }
                    self.stats.squashes += 1;
                    self.fetch_pc = actual.next_pc;
                    self.on_correct_path = true;
                    self.fetch_stall_until = self.cycle + 1;
                    #[cfg(feature = "audit")]
                    self.audit_recovery_check();
                }
            }
        }
    }

    /// Removes every in-flight instruction younger than `seq`,
    /// repairing speculative predictor/RAS state youngest-first.
    pub(crate) fn squash_younger_than(&mut self, seq: Seq) {
        // Collect squashed instructions from all pipeline holding
        // structures: fetch queue, decode pipe, RUU tail.
        let mut squashed: Vec<FetchedInst> = Vec::new();
        squashed.extend(self.fetch_queue.drain(..));
        for stage in &mut self.decode_pipe {
            squashed.append(stage);
        }
        while self.ruu.back().is_some_and(|e| e.fi.seq > seq) {
            let e = self.ruu.pop_back().expect("checked nonempty");
            squashed.push(e.fi);
        }
        self.lsq.retain(|&s| s <= seq);

        self.stats.squashed_insts += squashed.len() as u64;
        // Repair youngest-first.
        squashed.sort_by_key(|fi| Reverse(fi.seq));
        for fi in &squashed {
            debug_assert!(fi.seq > seq);
            if let Some(b) = &fi.branch {
                if b.low_conf {
                    self.low_conf_inflight = self.low_conf_inflight.saturating_sub(1);
                }
                if let Some(ckpt) = &b.hist_ckpt {
                    self.predictor.repair(ckpt);
                }
                if let Some(rc) = b.ras_ckpt {
                    self.ras.restore(rc);
                }
            }
        }
    }

    /// Issue stage: wake ready instructions and start execution.
    pub(crate) fn issue(&mut self) {
        let mut total_left = self.cfg.issue_width;
        let mut int_left = self.cfg.int_issue;
        let mut fp_left = self.cfg.fp_issue;
        let mut mem_left = self.cfg.mem_ports;
        let mut mul_left = self.cfg.int_mul;
        let mut fpmul_left = self.cfg.fp_mul;

        for idx in 0..self.ruu.len() {
            if total_left == 0 {
                break;
            }
            // Wakeup.
            if self.ruu[idx].state == EntryState::Waiting {
                let deps = self.ruu[idx].deps;
                let ready = deps.iter().flatten().all(|&p| self.producer_done(p));
                if ready {
                    self.ruu[idx].state = EntryState::Ready;
                }
            }
            if self.ruu[idx].state != EntryState::Ready {
                continue;
            }

            let op = self.ruu[idx].fi.inst.op;
            // Port/FU availability.
            let ok = match op {
                OpClass::IntAlu | OpClass::Cti => int_left > 0,
                OpClass::IntMul => int_left > 0 && mul_left > 0,
                OpClass::FpAlu => fp_left > 0,
                OpClass::FpMul => fp_left > 0 && fpmul_left > 0,
                OpClass::Load | OpClass::Store => mem_left > 0,
            };
            if !ok {
                continue;
            }

            // Loads: memory disambiguation against older stores.
            if op == OpClass::Load {
                let (can_issue, forwarded) = self.load_disambiguation(idx);
                if !can_issue {
                    continue;
                }
                let seq = self.ruu[idx].fi.seq;
                let addr = self.ruu[idx].fi.data_addr.expect("loads have addresses");
                let latency = if forwarded {
                    1
                } else {
                    self.load_latency(addr)
                };
                let entry = &mut self.ruu[idx];
                entry.state = EntryState::Issued;
                entry.addr_known = true;
                entry.completes_at = self.cycle + u64::from(latency);
                self.completions.push(Reverse((entry.completes_at, seq)));
                mem_left -= 1;
            } else {
                let latency = match op {
                    OpClass::IntAlu | OpClass::Cti => 1,
                    OpClass::IntMul => 3,
                    OpClass::FpAlu => 2,
                    OpClass::FpMul => 4,
                    OpClass::Store => 1,
                    OpClass::Load => unreachable!("handled above"),
                };
                let seq = self.ruu[idx].fi.seq;
                let entry = &mut self.ruu[idx];
                entry.state = EntryState::Issued;
                if op == OpClass::Store {
                    entry.addr_known = true;
                    mem_left -= 1;
                } else {
                    match op {
                        OpClass::IntAlu | OpClass::Cti => int_left -= 1,
                        OpClass::IntMul => {
                            int_left -= 1;
                            mul_left -= 1;
                        }
                        OpClass::FpAlu => fp_left -= 1,
                        OpClass::FpMul => {
                            fp_left -= 1;
                            fpmul_left -= 1;
                        }
                        _ => {}
                    }
                }
                entry.completes_at = self.cycle + latency;
                self.completions.push(Reverse((entry.completes_at, seq)));
            }

            total_left -= 1;
            self.issued_now += 1;
            self.stats.executed += 1;
            self.act.window += 1;
            self.act.regfile += 2;
            match op {
                OpClass::IntAlu | OpClass::IntMul | OpClass::Cti => self.act.ialu += 1,
                OpClass::FpAlu | OpClass::FpMul => self.act.falu += 1,
                OpClass::Load | OpClass::Store => self.act.lsq += 1,
            }
        }
    }

    /// Checks whether the load at RUU index `idx` may issue.
    /// Returns `(can_issue, forwarded_from_store)`.
    fn load_disambiguation(&self, idx: usize) -> (bool, bool) {
        let load = &self.ruu[idx];
        let load_seq = load.fi.seq;
        let load_addr = load.fi.data_addr.expect("loads have addresses");
        let load_block = load_addr.0 & !7;
        for &seq in &self.lsq {
            if seq >= load_seq {
                break;
            }
            let Some(sidx) = self.entry_index(seq) else {
                continue;
            };
            let e = &self.ruu[sidx];
            if e.fi.inst.op != OpClass::Store {
                continue;
            }
            if !e.addr_known {
                // Conservative: wait until all older store addresses
                // are known.
                return (false, false);
            }
            let saddr = e.fi.data_addr.expect("stores have addresses");
            if saddr.0 & !7 == load_block {
                return (true, true);
            }
        }
        (true, false)
    }

    /// D-cache access latency for a load, charging activity.
    fn load_latency(&mut self, addr: Addr) -> u32 {
        let mut lat = self.cfg.l1d.hit_latency;
        self.act.dcache += 1;
        if !self.tlb.access(addr) {
            lat += self.tlb.config().miss_penalty;
        }
        let l1 = self.dcache.access(addr, false);
        if !l1.hit {
            self.stats.dcache_misses += 1;
            self.act.dcache2 += 1;
            let l2r = self.l2.access(addr, false);
            lat += if l2r.hit {
                self.cfg.l2.hit_latency
            } else {
                self.cfg.mem_latency
            };
            if l1.writeback {
                self.act.dcache2 += 1;
            }
        }
        lat
    }

    /// Dispatch: move instructions from the decode/rename pipe into
    /// the RUU and LSQ, then shift the pipe and refill from the fetch
    /// buffer.
    pub(crate) fn dispatch(&mut self) {
        // Retire the oldest stage into the window.
        let depth = self.decode_pipe.len();
        let oldest = depth - 1;
        while let Some(&fi) = self.decode_pipe[oldest].first() {
            if self.ruu.len() >= self.cfg.ruu_size as usize {
                break;
            }
            if fi.inst.op.is_mem() && self.lsq.len() >= self.cfg.lsq_size as usize {
                break;
            }
            self.decode_pipe[oldest].remove(0);
            let deps = compute_deps(&fi);
            if fi.inst.op.is_mem() {
                self.lsq.push_back(fi.seq);
            }
            let addr_known_at_dispatch = fi.inst.op == OpClass::Store;
            debug_assert!(
                self.ruu.back().is_none_or(|e| e.fi.seq < fi.seq),
                "RUU must stay seq-ordered"
            );
            let mut entry = RuuEntry::new(fi, deps);
            // Store addresses are produced by the address-generation
            // path as soon as the store dispatches; the data operand is
            // what the store may still wait on. Loads can therefore
            // disambiguate against it immediately.
            entry.addr_known = addr_known_at_dispatch;
            self.ruu.push_back(entry);
            self.act.rename += 1;
            self.act.window += 1;
        }

        // Shift the latch pipeline where possible (in-order, rigid).
        for i in (0..oldest).rev() {
            if self.decode_pipe[i + 1].is_empty() && !self.decode_pipe[i].is_empty() {
                let stage = std::mem::take(&mut self.decode_pipe[i]);
                self.decode_pipe[i + 1] = stage;
            }
        }

        // Decode: pull from the fetch buffer into stage 0.
        if self.decode_pipe[0].is_empty() {
            for _ in 0..self.cfg.decode_width {
                let Some(fi) = self.fetch_queue.pop_front() else {
                    break;
                };
                self.decode_pipe[0].push(fi);
            }
        }
    }
}

/// Synthesizes RUU dependency links from an instruction's dependency
/// distances.
fn compute_deps(fi: &FetchedInst) -> [Option<Seq>; 2] {
    let d = fi.inst.dep_distances();
    let resolve =
        |dist: Option<u8>| -> Option<Seq> { dist.and_then(|k| fi.seq.checked_sub(u64::from(k))) };
    [resolve(d[0]), resolve(d[1])]
}
