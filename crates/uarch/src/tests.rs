//! End-to-end machine tests (debug assertions inside the pipeline —
//! oracle pairing, commit-path purity, RUU ordering — all fire during
//! these runs).

use crate::{Machine, UarchConfig};
use bw_power::PpdScenario;
use bw_predictors::{HybridConfig, PredictorConfig};
use bw_workload::benchmark;

fn machine_for<'p>(
    program: &'p bw_workload::StaticProgram,
    model: &bw_workload::BenchmarkModel,
    cfg: &UarchConfig,
    pred: PredictorConfig,
) -> Machine<'p> {
    Machine::new(cfg, program, model, 7, pred)
}

#[test]
fn runs_to_completion_with_plausible_ipc() {
    let model = benchmark("gzip").unwrap();
    let program = model.build_program(7);
    let cfg = UarchConfig::alpha21264_like();
    let mut m = machine_for(&program, model, &cfg, PredictorConfig::bimodal(4096));
    m.warmup(20_000);
    m.run(30_000);
    let ipc = m.stats().ipc();
    assert!((0.3..5.9).contains(&ipc), "IPC {ipc} out of range");
    assert!(m.stats().fetched >= m.stats().committed);
    assert!(m.stats().executed >= m.stats().committed);
}

#[test]
fn pipeline_accuracy_matches_trace_accuracy() {
    // The cycle-level machine's committed direction accuracy must be
    // close to the trace-driven accuracy of the same predictor on the
    // same program (speculative-history repair working correctly).
    let model = benchmark("vortex").unwrap();
    let program = model.build_program(3);
    let cfg = UarchConfig::alpha21264_like();
    let mut m = Machine::new(
        &cfg,
        &program,
        model,
        3,
        PredictorConfig::bimodal(16 * 1024),
    );
    m.warmup(50_000);
    m.run(50_000);
    let acc = m.stats().direction_accuracy();
    let target = model.bimod16k_target;
    assert!(
        (acc - target).abs() < 0.08,
        "pipeline accuracy {acc:.4} too far from trace target {target:.4}"
    );
}

#[test]
fn better_predictor_gives_better_ipc() {
    let model = benchmark("parser").unwrap();
    let program = model.build_program(5);
    let cfg = UarchConfig::alpha21264_like();

    let mut tiny = Machine::new(&cfg, &program, model, 5, PredictorConfig::bimodal(128));
    tiny.warmup(30_000);
    tiny.run(40_000);

    let mut big = Machine::new(
        &cfg,
        &program,
        model,
        5,
        PredictorConfig::Hybrid(HybridConfig::alpha_21264()),
    );
    big.warmup(30_000);
    big.run(40_000);

    assert!(
        big.stats().direction_accuracy() > tiny.stats().direction_accuracy() + 0.01,
        "hybrid {:.4} must beat bimodal-128 {:.4}",
        big.stats().direction_accuracy(),
        tiny.stats().direction_accuracy()
    );
    assert!(
        big.stats().ipc() > tiny.stats().ipc(),
        "hybrid IPC {:.3} must beat bimodal-128 IPC {:.3}",
        big.stats().ipc(),
        tiny.stats().ipc()
    );
}

#[test]
fn deterministic_across_runs() {
    let model = benchmark("gcc").unwrap();
    let program = model.build_program(9);
    let cfg = UarchConfig::alpha21264_like();
    let run = || {
        let mut m = Machine::new(&cfg, &program, model, 9, PredictorConfig::gshare(4096, 8));
        m.warmup(5_000);
        m.run(20_000);
        (
            m.stats().cycles,
            m.stats().fetched,
            m.stats().cond_correct,
            m.power_report().total_energy_j(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert!((a.3 - b.3).abs() < 1e-12);
}

#[test]
fn mispredictions_cause_squashes_and_wrong_path_fetch() {
    let model = benchmark("twolf").unwrap(); // low accuracy -> many squashes
    let program = model.build_program(1);
    let cfg = UarchConfig::alpha21264_like();
    let mut m = Machine::new(&cfg, &program, model, 1, PredictorConfig::bimodal(256));
    m.warmup(10_000);
    m.run(30_000);
    let s = m.stats();
    assert!(
        s.squashes > 100,
        "expected many squashes, got {}",
        s.squashes
    );
    assert!(
        s.squashed_insts > s.squashes,
        "squashes flush younger instructions"
    );
    assert!(
        s.fetched > s.committed + s.squashed_insts / 2,
        "wrong-path fetch volume should show up"
    );
}

#[test]
fn ppd_gates_a_large_fraction_of_lookups() {
    let model = benchmark("gap").unwrap(); // sparse branches
    let program = model.build_program(2);
    let cfg = UarchConfig::alpha21264_like().with_ppd(PpdScenario::One);
    let mut m = Machine::new(&cfg, &program, model, 2, PredictorConfig::gas(32 * 1024, 8));
    m.warmup(40_000);
    m.run(40_000);
    let s = m.stats();
    assert!(s.fetch_active_cycles > 0);
    // With ~12-instruction CTI distances and 8-instruction lines, a
    // large share of fetch cycles need no direction-predictor probe.
    assert!(
        s.ppd_dir_gate_rate() > 0.15,
        "dir gate rate {:.3} too low",
        s.ppd_dir_gate_rate()
    );
    assert!(
        s.ppd_btb_gate_rate() > 0.10,
        "btb gate rate {:.3} too low",
        s.ppd_btb_gate_rate()
    );
    // Gating must not change committed behaviour: accuracy unaffected.
    assert!(s.direction_accuracy() > 0.7);
}

#[test]
fn ppd_reduces_bpred_energy_without_hurting_ipc() {
    let model = benchmark("gzip").unwrap();
    let program = model.build_program(4);
    let pred = PredictorConfig::gas(32 * 1024, 8);

    let base_cfg = UarchConfig::alpha21264_like();
    let mut base = Machine::new(&base_cfg, &program, model, 4, pred);
    base.warmup(20_000);
    base.run(30_000);

    let ppd_cfg = UarchConfig::alpha21264_like().with_ppd(PpdScenario::One);
    let mut ppd = Machine::new(&ppd_cfg, &program, model, 4, pred);
    ppd.warmup(20_000);
    ppd.run(30_000);

    let be = base.power_report().bpred_energy_j();
    let pe = ppd.power_report().bpred_energy_j();
    assert!(pe < be, "PPD must cut predictor energy: {pe} !< {be}");
    let ipc_delta = (base.stats().ipc() - ppd.stats().ipc()).abs();
    assert!(ipc_delta < 0.02, "PPD must not change IPC ({ipc_delta})");
}

#[test]
fn pipeline_gating_reduces_wrongpath_fetch() {
    let model = benchmark("twolf").unwrap();
    let program = model.build_program(6);
    let pred = PredictorConfig::Hybrid(HybridConfig::tiny_hybrid0());

    let base_cfg = UarchConfig::alpha21264_like();
    let mut base = Machine::new(&base_cfg, &program, model, 6, pred);
    base.warmup(20_000);
    base.run(30_000);

    let gated_cfg = UarchConfig::alpha21264_like().with_gating(0);
    let mut gated = Machine::new(&gated_cfg, &program, model, 6, pred);
    gated.warmup(20_000);
    gated.run(30_000);

    assert!(gated.stats().gated_cycles > 0, "gating must engage");
    assert!(
        gated.stats().fetched < base.stats().fetched,
        "gating must reduce fetch volume: {} !< {}",
        gated.stats().fetched,
        base.stats().fetched
    );
    // Gating costs some IPC.
    assert!(gated.stats().ipc() <= base.stats().ipc() + 0.02);
}

#[test]
fn power_report_has_paper_like_magnitudes() {
    let model = benchmark("crafty").unwrap();
    let program = model.build_program(8);
    let cfg = UarchConfig::alpha21264_like();
    let mut m = Machine::new(
        &cfg,
        &program,
        model,
        8,
        PredictorConfig::gshare(16 * 1024, 12),
    );
    m.warmup(20_000);
    m.run(40_000);
    let r = m.power_report();
    let total = r.avg_power_w();
    let bpred = r.bpred_power_w();
    assert!((15.0..55.0).contains(&total), "chip power {total} W");
    assert!((0.5..8.0).contains(&bpred), "bpred power {bpred} W");
    let share = bpred / total;
    assert!((0.02..0.25).contains(&share), "bpred share {share}");
}

#[test]
fn branch_frequencies_survive_the_pipeline() {
    let model = benchmark("parser").unwrap();
    let program = model.build_program(2);
    let cfg = UarchConfig::alpha21264_like();
    let mut m = Machine::new(&cfg, &program, model, 2, PredictorConfig::bimodal(4096));
    m.warmup(10_000);
    m.run(60_000);
    let s = m.stats();
    let freq = s.cond_branch_freq();
    assert!(
        (freq - model.cond_freq).abs() < model.cond_freq * 0.5 + 0.01,
        "committed cond freq {freq:.4} vs model {:.4}",
        model.cond_freq
    );
    assert!(s.avg_cond_distance() > 2.0);
    assert!(s.avg_cti_distance() <= s.avg_cond_distance());
}

#[test]
fn speculative_history_beats_commit_time_history() {
    // The paper adopts Skadron et al.'s speculative update + repair;
    // with history updated only at commit, deep pipelines predict with
    // stale history and lose accuracy.
    let model = benchmark("gap").unwrap(); // correlation-heavy
    let program = model.build_program(3);
    let pred = PredictorConfig::gshare(16 * 1024, 12);

    let spec_cfg = UarchConfig::alpha21264_like();
    let mut spec = Machine::new(&spec_cfg, &program, model, 3, pred);
    spec.warmup(300_000);
    spec.run(60_000);

    let nonspec_cfg = UarchConfig::alpha21264_like().with_commit_time_history();
    let mut nonspec = Machine::new(&nonspec_cfg, &program, model, 3, pred);
    nonspec.warmup(300_000);
    nonspec.run(60_000);

    assert!(
        spec.stats().direction_accuracy() > nonspec.stats().direction_accuracy() + 0.005,
        "speculative {:.4} must beat commit-time {:.4}",
        spec.stats().direction_accuracy(),
        nonspec.stats().direction_accuracy()
    );
}

#[test]
fn jrs_gating_engages_on_any_predictor() {
    let model = benchmark("twolf").unwrap();
    let program = model.build_program(4);
    let cfg = UarchConfig::alpha21264_like().with_jrs_gating(0);
    let mut m = Machine::new(&cfg, &program, model, 4, PredictorConfig::gshare(4096, 8));
    m.warmup(50_000);
    m.run(30_000);
    assert!(
        m.stats().gated_cycles > 0,
        "JRS gating must engage on a non-hybrid predictor"
    );
}

#[test]
fn next_line_predictor_front_end_works() {
    // The 21264-style front end must sustain comparable IPC to the
    // BTB machine while its target structure is far smaller.
    let model = benchmark("gzip").unwrap();
    let program = model.build_program(5);
    let pred = PredictorConfig::Hybrid(HybridConfig::alpha_21264());

    let btb_cfg = UarchConfig::alpha21264_like();
    let mut btb = Machine::new(&btb_cfg, &program, model, 5, pred);
    btb.warmup(200_000);
    btb.run(50_000);

    let nlp_cfg = UarchConfig::alpha21264_like().with_next_line_predictor();
    let mut nlp = Machine::new(&nlp_cfg, &program, model, 5, pred);
    nlp.warmup(200_000);
    nlp.run(50_000);

    let (bi, ni) = (btb.stats().ipc(), nlp.stats().ipc());
    assert!(
        ni > bi * 0.85,
        "NLP IPC {ni:.3} too far below BTB IPC {bi:.3}"
    );
    assert!(
        nlp.bpred_power().max_cycle_energy_j() < btb.bpred_power().max_cycle_energy_j(),
        "the NLP front end must be cheaper per cycle"
    );
    // Direction accuracy is a property of the direction predictor, not
    // the target structure.
    assert!((nlp.stats().direction_accuracy() - btb.stats().direction_accuracy()).abs() < 0.01);
}

mod machine_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn machine_invariants_hold_across_configs(
            bench_idx in 0usize..4,
            pred_idx in 0usize..3,
            seed in 1u64..50,
        ) {
            let names = ["gzip", "twolf", "swim", "vortex"];
            let model = benchmark(names[bench_idx]).unwrap();
            let program = model.build_program(seed);
            let preds = [
                PredictorConfig::bimodal(1024),
                PredictorConfig::gshare(4096, 8),
                PredictorConfig::Hybrid(HybridConfig::tiny_hybrid0()),
            ];
            let cfg = UarchConfig::alpha21264_like();
            let mut m = Machine::new(&cfg, &program, model, seed, preds[pred_idx]);
            m.warmup(20_000);
            let committed = m.run(15_000);
            let s = m.stats();
            // Commit accounting.
            prop_assert!(committed >= 15_000);
            prop_assert_eq!(s.committed, committed);
            // Volume ordering: everything fetched either commits,
            // squashes, or is still in flight.
            prop_assert!(s.fetched >= s.committed);
            prop_assert!(s.fetched >= s.squashed_insts);
            prop_assert!(s.executed >= s.committed);
            // Branch accounting.
            prop_assert!(s.cond_correct <= s.cond_committed);
            prop_assert!(s.cond_committed <= s.cti_committed);
            prop_assert!(s.cti_addr_correct <= s.cti_committed);
            // Power accounting is strictly positive and the predictor
            // never dominates the chip.
            let r = m.power_report();
            prop_assert!(r.total_energy_j() > 0.0);
            prop_assert!(r.bpred_energy_j() > 0.0);
            prop_assert!(r.bpred_energy_j() < r.total_energy_j() * 0.5);
            // Re-pricing under the run's own options is exact.
            let totals = m.bpred_totals();
            let repriced = m.bpred_power().energy_for_totals(&totals);
            prop_assert!((repriced - r.bpred_energy_j()).abs()
                < 1e-9 * r.bpred_energy_j().max(1e-12));
        }
    }
}
