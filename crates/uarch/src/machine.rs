//! The machine: construction, warmup, the cycle loop, and the fetch
//! stage.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use bw_arrays::{ModelKind, TechParams};
use bw_power::{
    Activity, BpredActivity, BpredOptions, BpredPower, BpredTotals, ChipPower, EnergyReport,
};
use bw_predictors::{
    BranchBatch, Btb, DirectionPredictor, JrsEstimator, NextLinePredictor, Ppd, PpdBits,
    Prediction, PredictorConfig, Ras,
};
use bw_types::{Addr, CtiKind, Cycle, Seq};
use bw_workload::{BenchmarkModel, InstSource, StaticProgram, Thread};

use crate::cache::{Cache, Tlb};
use crate::config::UarchConfig;
use crate::inflight::{BranchState, FetchedInst, RuuEntry};
use crate::stats::SimStats;

/// The cycle-level out-of-order machine.
///
/// See the crate docs for the modelled pipeline. A `Machine` is built
/// over a synthetic program and executes an architectural instruction
/// source (a live [`Thread`] by default, or a trace replayer), fetching
/// speculatively (including down wrong paths) by decoding PCs directly.
pub struct Machine<'p, S: InstSource = Thread<'p>> {
    pub(crate) cfg: UarchConfig,
    pub(crate) program: &'p StaticProgram,
    pub(crate) source: S,
    // Prediction structures.
    pub(crate) predictor: Box<dyn DirectionPredictor + Send>,
    pub(crate) btb: Btb,
    pub(crate) ras: Ras,
    pub(crate) ppd: Option<Ppd>,
    pub(crate) jrs: Option<JrsEstimator>,
    pub(crate) nlp: Option<NextLinePredictor>,
    // Memory hierarchy.
    pub(crate) icache: Cache,
    pub(crate) dcache: Cache,
    pub(crate) l2: Cache,
    pub(crate) tlb: Tlb,
    // Power.
    pub(crate) power: ChipPower,
    // Fetch state.
    pub(crate) fetch_pc: Addr,
    pub(crate) on_correct_path: bool,
    pub(crate) fetch_stall_until: Cycle,
    pub(crate) fetch_queue: VecDeque<FetchedInst>,
    /// Decode + extra rename stages; index 0 is the youngest stage.
    pub(crate) decode_pipe: VecDeque<Vec<FetchedInst>>,
    // Backend.
    pub(crate) ruu: VecDeque<RuuEntry>,
    pub(crate) lsq: VecDeque<Seq>,
    pub(crate) completions: BinaryHeap<Reverse<(Cycle, Seq)>>,
    // Pipeline gating.
    pub(crate) low_conf_inflight: u32,
    // Bookkeeping.
    pub(crate) cycle: Cycle,
    pub(crate) next_seq: Seq,
    pub(crate) stats: SimStats,
    pub(crate) bpred_totals: BpredTotals,
    pub(crate) last_cond_at: u64,
    pub(crate) last_cti_at: u64,
    pub(crate) working_set: u64,
    // Per-cycle activity scratch.
    pub(crate) act: Activity,
    pub(crate) bact: BpredActivity,
    pub(crate) fetched_now: u32,
    pub(crate) issued_now: u32,
    pub(crate) committed_now: u32,
    // Runtime sanitizer (observation-only; None unless enabled).
    #[cfg(feature = "audit")]
    pub(crate) audit: Option<Box<crate::audit::AuditState>>,
}

impl<'p> Machine<'p> {
    /// Builds a machine with the default power model (new array model,
    /// unbanked).
    #[must_use]
    pub fn new(
        cfg: &UarchConfig,
        program: &'p StaticProgram,
        model: &BenchmarkModel,
        seed: u64,
        predictor_cfg: PredictorConfig,
    ) -> Self {
        Self::with_power(
            cfg,
            program,
            model,
            seed,
            predictor_cfg,
            ModelKind::WithColumnDecoders,
            false,
            &TechParams::default(),
        )
    }

    /// Builds a machine with explicit power-model options (array model
    /// kind and banking).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn with_power(
        cfg: &UarchConfig,
        program: &'p StaticProgram,
        model: &BenchmarkModel,
        seed: u64,
        predictor_cfg: PredictorConfig,
        kind: ModelKind,
        banked: bool,
        tech: &TechParams,
    ) -> Self {
        let thread = model.thread(program, seed);
        Machine::with_source(
            cfg,
            program,
            thread,
            model.working_set,
            predictor_cfg,
            kind,
            banked,
            tech,
        )
    }
}

impl<'p, S: InstSource> Machine<'p, S> {
    /// Builds a machine over an explicit instruction source (the
    /// generic entry point shared by generate and replay modes).
    ///
    /// `working_set` sizes the wrong-path data-address model; it must
    /// match the source's own data model for generate/replay parity.
    /// The source's current PC becomes the initial fetch PC.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn with_source(
        cfg: &UarchConfig,
        program: &'p StaticProgram,
        source: S,
        working_set: u64,
        predictor_cfg: PredictorConfig,
        kind: ModelKind,
        banked: bool,
        tech: &TechParams,
    ) -> Self {
        let predictor = predictor_cfg.build();
        let ppd = cfg.ppd.map(|_| {
            let lines = cfg.l1i.size_bytes / cfg.l1i.line_bytes;
            Ppd::new(lines, cfg.l1i.line_bytes)
        });
        let mut storages = predictor.storages();
        let btb = Btb::new(cfg.btb_entries, cfg.btb_assoc);
        let nlp = match cfg.target_predictor {
            crate::config::TargetPredictor::Btb => {
                storages.push(btb.storage());
                None
            }
            crate::config::TargetPredictor::NextLine => {
                let lines = cfg.l1i.size_bytes / cfg.l1i.line_bytes;
                let n = NextLinePredictor::new(lines, cfg.l1i.line_bytes);
                storages.push(n.storage());
                Some(n)
            }
        };
        let ras = Ras::new(cfg.ras_entries);
        storages.push(ras.storage());
        let jrs = match cfg.gating {
            Some(g) if g.estimator == crate::config::ConfidenceKind::Jrs => {
                let j = JrsEstimator::default_config();
                storages.push(j.storage());
                Some(j)
            }
            _ => None,
        };
        if let Some(p) = &ppd {
            storages.push(p.storage());
        }
        let bpred_power = BpredPower::new(
            &storages,
            tech,
            BpredOptions {
                kind,
                banked,
                ppd: cfg.ppd,
            },
        );
        let power = ChipPower::new(tech, bpred_power);
        let fetch_pc = source.pc();
        let depth = (1 + cfg.extra_rename_stages) as usize;
        Machine {
            cfg: cfg.clone(),
            program,
            source,
            predictor,
            btb,
            ras,
            ppd,
            jrs,
            nlp,
            icache: Cache::new(cfg.l1i),
            dcache: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            tlb: Tlb::new(cfg.tlb),
            power,
            fetch_pc,
            on_correct_path: true,
            fetch_stall_until: 0,
            fetch_queue: VecDeque::with_capacity(cfg.fetch_buffer as usize + 8),
            decode_pipe: VecDeque::from(vec![Vec::new(); depth]),
            ruu: VecDeque::with_capacity(cfg.ruu_size as usize),
            lsq: VecDeque::with_capacity(cfg.lsq_size as usize),
            completions: BinaryHeap::new(),
            low_conf_inflight: 0,
            cycle: 0,
            next_seq: 0,
            stats: SimStats::default(),
            bpred_totals: BpredTotals::default(),
            last_cond_at: 0,
            last_cti_at: 0,
            working_set,
            act: Activity::default(),
            bact: BpredActivity::default(),
            fetched_now: 0,
            issued_now: 0,
            committed_now: 0,
            #[cfg(feature = "audit")]
            audit: None,
        }
    }

    /// One-line internal state summary (debugging aid).
    #[must_use]
    pub fn debug_state(&self) -> String {
        let head = self.ruu.front().map(|e| {
            format!(
                "{:?}/{:?}/seq{}/deps{:?}/c@{}",
                e.fi.inst.op, e.state, e.fi.seq, e.deps, e.completes_at
            )
        });
        format!(
            "cyc {} ruu {} lsq {} fq {} pipe {:?} head {:?} stall_until {} correct {} compl {} pc {} i$ {:?} l2 {:?}",
            self.cycle, self.ruu.len(), self.lsq.len(), self.fetch_queue.len(),
            self.decode_pipe.iter().map(Vec::len).collect::<Vec<_>>(),
            head, self.fetch_stall_until, self.on_correct_path, self.completions.len(),
            self.fetch_pc, self.icache.stats(), self.l2.stats(),
        )
    }

    /// Aggregate branch-prediction activity over the run, usable for
    /// post-hoc re-pricing under different power-model options.
    #[must_use]
    pub fn bpred_totals(&self) -> BpredTotals {
        self.bpred_totals
    }

    /// (hits, misses) of the L1 I-cache.
    #[must_use]
    pub fn icache_stats(&self) -> (u64, u64) {
        self.icache.stats()
    }

    /// (hits, misses) of the unified L2.
    #[must_use]
    pub fn l2_stats(&self) -> (u64, u64) {
        self.l2.stats()
    }

    /// (hits, misses) of the L1 D-cache.
    #[must_use]
    pub fn dcache_stats(&self) -> (u64, u64) {
        self.dcache.stats()
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Energy/power report so far.
    #[must_use]
    pub fn power_report(&self) -> EnergyReport {
        self.power.report()
    }

    /// The predictor's power model (per-access energies).
    #[must_use]
    pub fn bpred_power(&self) -> &BpredPower {
        self.power.bpred()
    }

    /// Fast-forwards `insts` architectural instructions trace-style
    /// (no cycle accounting, no power): the predictor, BTB, RAS,
    /// caches and PPD are warmed exactly as the paper's runs warm
    /// state while fast-forwarding past initialization.
    ///
    /// Resolved conditional branches are accumulated into a
    /// [`BranchBatch`] and fed to the predictor through its batched
    /// surface ([`DirectionPredictor::lookup_batch`] /
    /// [`DirectionPredictor::commit_batch`]) — one virtual call per
    /// [`WARM_BATCH`](Self::WARM_BATCH) branches instead of several
    /// per branch. Final predictor state is byte-identical to the
    /// scalar protocol ([`warmup_scalar`](Self::warmup_scalar) keeps
    /// the old loop as the differential reference): speculative
    /// history absorbs the resolved outcome either way, and
    /// commit-time training indexes through metadata captured at
    /// lookup, never live history.
    pub fn warmup(&mut self, insts: u64) {
        let mut batch = BranchBatch::with_capacity(Self::WARM_BATCH);
        let mut preds: Vec<Prediction> = Vec::with_capacity(Self::WARM_BATCH);
        let line_shift = self.cfg.l1i.line_bytes.trailing_zeros();
        // Same-line i-fetch shortcut: a back-to-back access to the line
        // just fetched is a hit by construction and already MRU, so the
        // hit-counter bump is its entire observable effect. Nothing
        // between two consecutive warm fetches touches the i-cache, so
        // the line cannot have been evicted in between.
        let mut last_line = u64::MAX;
        for _ in 0..insts {
            let step = self.source.step();
            let pc = step.inst.pc;
            // I-side warm: line granular.
            let line = pc.0 >> line_shift;
            if line == last_line {
                self.icache.note_repeat_hit();
            } else {
                last_line = line;
                if !self.icache.access(pc, false).hit {
                    self.l2.access(pc, false);
                    if let Some(ppd) = &mut self.ppd {
                        let bits = line_predecode(self.program, pc, self.cfg.l1i.line_bytes);
                        ppd.on_refill(pc, bits);
                    }
                }
            }
            if let Some(addr) = step.data_addr {
                self.tlb.access(addr);
                if !self
                    .dcache
                    .access(addr, step.inst.op == bw_types::OpClass::Store)
                    .hit
                {
                    self.l2.access(addr, false);
                }
            }
            if let Some(cti) = step.inst.cti {
                let actual = step.control.expect("CTIs resolve");
                if cti.kind == CtiKind::CondBranch {
                    batch.push(pc, actual.outcome);
                    if batch.len() >= Self::WARM_BATCH {
                        self.predictor.lookup_batch(&batch, &mut preds);
                        self.predictor.commit_batch(&batch, &preds);
                        batch.clear();
                        preds.clear();
                    }
                }
                match cti.kind {
                    CtiKind::Call => self.ras.push(pc.next()),
                    CtiKind::Return => {
                        let _ = self.ras.pop();
                    }
                    _ => {}
                }
                if actual.outcome.is_taken() {
                    match &mut self.nlp {
                        Some(nlp) => nlp.train(pc, actual.next_pc),
                        None => self.btb.update(pc, actual.next_pc),
                    }
                }
            }
        }
        if !batch.is_empty() {
            self.predictor.lookup_batch(&batch, &mut preds);
            self.predictor.commit_batch(&batch, &preds);
        }
        self.fetch_pc = self.source.pc();
        self.on_correct_path = true;
    }

    /// Resolved branches per batched predictor call on the warm path.
    ///
    /// Large enough to amortize the two virtual calls per batch to
    /// nothing, small enough that the batch and its predictions stay
    /// resident in L1.
    pub const WARM_BATCH: usize = 256;

    /// The scalar reference implementation of [`warmup`](Self::warmup):
    /// one predictor call per protocol step, per branch.
    ///
    /// Kept for the batch-vs-scalar differential tests and benchmarks
    /// that pin the batched warm path to this loop's exact final
    /// state; simulation entry points use the batched `warmup`.
    pub fn warmup_scalar(&mut self, insts: u64) {
        for _ in 0..insts {
            let step = self.source.step();
            let pc = step.inst.pc;
            // I-side warm: line granular.
            let hit = self.icache.access(pc, false).hit;
            if !hit {
                self.l2.access(pc, false);
                if let Some(ppd) = &mut self.ppd {
                    let bits = line_predecode(self.program, pc, self.cfg.l1i.line_bytes);
                    ppd.on_refill(pc, bits);
                }
            }
            if let Some(addr) = step.data_addr {
                self.tlb.access(addr);
                if !self
                    .dcache
                    .access(addr, step.inst.op == bw_types::OpClass::Store)
                    .hit
                {
                    self.l2.access(addr, false);
                }
            }
            if let Some(cti) = step.inst.cti {
                let actual = step.control.expect("CTIs resolve");
                if cti.kind == CtiKind::CondBranch {
                    if self.cfg.speculative_history {
                        // lint: allow(batched-warm-path) — this is the
                        // scalar differential reference.
                        let r = self.predictor.lookup(pc);
                        if r.pred.outcome != actual.outcome {
                            self.predictor.repair(&r.ckpt);
                            self.predictor.spec_push(pc, actual.outcome);
                        }
                        self.predictor.commit(pc, actual.outcome, &r.pred);
                    } else {
                        // lint: allow(batched-warm-path) — scalar
                        // reference, commit-time history update.
                        let pred = self.predictor.predict_nonspec(pc);
                        self.predictor.commit(pc, actual.outcome, &pred);
                        self.predictor.spec_push(pc, actual.outcome);
                    }
                }
                match cti.kind {
                    CtiKind::Call => self.ras.push(pc.next()),
                    CtiKind::Return => {
                        let _ = self.ras.pop();
                    }
                    _ => {}
                }
                if actual.outcome.is_taken() {
                    match &mut self.nlp {
                        Some(nlp) => nlp.train(pc, actual.next_pc),
                        None => self.btb.update(pc, actual.next_pc),
                    }
                }
            }
        }
        self.fetch_pc = self.source.pc();
        self.on_correct_path = true;
    }

    /// Runs until `max_commits` instructions have committed (or a
    /// safety cycle cap is hit). Returns committed instructions.
    pub fn run(&mut self, max_commits: u64) -> u64 {
        let target = self.stats.committed + max_commits;
        // Deadlock guard: generous for low-IPC phases.
        let cycle_cap = self.cycle + max_commits * 40 + 100_000;
        while self.stats.committed < target && self.cycle < cycle_cap {
            self.tick();
        }
        debug_assert!(
            self.stats.committed >= target,
            "machine wedged: {} of {target} commits after {} cycles",
            self.stats.committed,
            self.cycle,
        );
        self.stats.committed
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
        self.act = Activity::default();
        self.bact = BpredActivity::default();
        self.fetched_now = 0;
        self.issued_now = 0;
        self.committed_now = 0;
        #[cfg(feature = "audit")]
        self.audit_begin_cycle();

        let dir_gated_before = self.stats.ppd_dir_gated;
        let btb_gated_before = self.stats.ppd_btb_gated;

        self.commit();
        self.writeback();
        self.issue();
        self.dispatch();
        self.fetch();

        self.bpred_totals.add_cycle(
            &self.bact,
            self.stats.ppd_dir_gated - dir_gated_before,
            self.stats.ppd_btb_gated - btb_gated_before,
        );

        // Clock network scales with overall pipeline activity.
        let work = self.fetched_now + self.issued_now + self.committed_now;
        let denom = self.cfg.fetch_width + self.cfg.issue_width + self.cfg.commit_width;
        self.act.clock_64ths = 16 + (48 * work / denom.max(1)).min(48);
        self.stats.cycles += 1;
        let act = self.act;
        let bact = self.bact;
        self.power.tick(&act, &bact);
        #[cfg(feature = "audit")]
        self.audit_cycle_check();
    }

    pub(crate) fn gating_active(&self) -> bool {
        self.cfg
            .gating
            .is_some_and(|g| self.low_conf_inflight > g.threshold)
    }

    /// The fetch stage.
    fn fetch(&mut self) {
        if self.cycle < self.fetch_stall_until {
            return;
        }
        if self.gating_active() {
            self.stats.gated_cycles += 1;
            return;
        }
        if self.fetch_queue.len() >= self.cfg.fetch_buffer as usize {
            return;
        }
        // A wrong-path fetch that wandered outside the program's mapped
        // code faults in the I-TLB and stalls until the mispredicted
        // branch resolves — it does not fabricate cache fills.
        if !self.program.in_code_region(self.fetch_pc) {
            debug_assert!(!self.on_correct_path, "correct path left the code region");
            return;
        }

        // Active fetch cycle: the I-cache, direction predictor and BTB
        // are accessed in parallel (or the PPD gates the latter two).
        self.stats.fetch_active_cycles += 1;
        self.act.icache += 1;

        let line_bytes = self.cfg.l1i.line_bytes;
        let bits = match &self.ppd {
            Some(ppd) => {
                self.bact.ppd_lookups += 1;
                ppd.lookup(self.fetch_pc)
            }
            None => PpdBits::CONSERVATIVE,
        };
        let (mut dir_charged, mut btb_charged) = (false, false);
        if bits.has_cond {
            self.bact.dir_lookups += 1;
            dir_charged = true;
        } else {
            self.stats.ppd_dir_gated += 1;
            if self.cfg.ppd == Some(bw_power::PpdScenario::Two) {
                self.bact.dir_partial_lookups += 1;
            }
        }
        if bits.has_cti {
            self.bact.btb_lookups += 1;
            btb_charged = true;
        } else {
            self.stats.ppd_btb_gated += 1;
            if self.cfg.ppd == Some(bw_power::PpdScenario::Two) {
                self.bact.btb_partial_lookups += 1;
            }
        }

        // I-cache access for this line.
        let line_pc = self.fetch_pc;
        let res = self.icache.access(line_pc, false);
        if !res.hit {
            self.stats.icache_misses += 1;
            self.act.dcache2 += 1;
            let l2r = self.l2.access(line_pc, false);
            let lat = if l2r.hit {
                self.cfg.l2.hit_latency
            } else {
                self.cfg.mem_latency
            };
            self.fetch_stall_until = self.cycle + u64::from(lat);
            if let Some(ppd) = &mut self.ppd {
                let bits = line_predecode(self.program, line_pc, line_bytes);
                ppd.on_refill(line_pc, bits);
                self.bact.ppd_updates += 1;
            }
            return;
        }

        // Fetch instructions up to the line boundary / width / a taken
        // branch.
        let mut width_left = self.cfg.fetch_width;
        while width_left > 0 && self.fetch_queue.len() < self.cfg.fetch_buffer as usize {
            let pc = self.fetch_pc;
            let inst = self.program.decode(pc);

            // PPD conservatism fallback: a (rare) aliased PPD entry may
            // claim the line has no conditional branch / CTI while the
            // resident line does. Hardware would take the conservative
            // path; we charge the lookup that must then happen.
            if inst.is_cond_branch() && !dir_charged {
                self.bact.dir_lookups += 1;
                dir_charged = true;
                self.stats.ppd_dir_gated = self.stats.ppd_dir_gated.saturating_sub(1);
            }
            if inst.is_cti() && !btb_charged {
                self.bact.btb_lookups += 1;
                btb_charged = true;
                self.stats.ppd_btb_gated = self.stats.ppd_btb_gated.saturating_sub(1);
            }

            let seq = self.next_seq;
            self.next_seq += 1;

            // Oracle pairing: instructions fetched while still on the
            // correct path consume one oracle step each.
            let was_correct = self.on_correct_path;
            let (data_addr, actual) = if was_correct {
                let step = self.source.step();
                debug_assert_eq!(step.inst.pc, pc, "oracle and fetch diverged");
                (step.data_addr, step.control)
            } else {
                let da = if inst.op.is_mem() {
                    Some(self.wrong_path_addr(pc, seq))
                } else {
                    None
                };
                (da, None)
            };

            let mut stop_after = false;
            let mut misfetch = false;
            let branch = inst.cti.map(|cti| {
                let (bs, stop, mf) = self.fetch_cti(pc, cti, actual);
                stop_after = stop;
                misfetch = mf;
                bs
            });
            #[cfg(debug_assertions)]
            if was_correct && self.cfg.speculative_history {
                if let Some(b) = &branch {
                    if b.prediction.is_some() && !b.mispredicted {
                        // On the correct path with speculative update +
                        // repair, a correctly-predicted branch leaves the
                        // predictor's global history equal to the
                        // architectural history including this branch.
                        if let Some(ghr) = self.predictor.debug_ghr() {
                            let oracle = self.source.global_history();
                            debug_assert_eq!(
                                ghr & 0xfff,
                                oracle & 0xfff,
                                "speculative history diverged at pc {pc} seq {seq}: {:012b} vs {:012b} (misp {})", ghr & 0xfff, oracle & 0xfff, b.mispredicted
                            );
                        }
                    }
                }
            }
            let next_pc = branch.map_or_else(|| pc.next(), |b| b.predicted_next);

            if let Some(b) = &branch {
                if b.mispredicted && was_correct {
                    // Fetch now proceeds down the wrong path until this
                    // branch resolves.
                    self.on_correct_path = false;
                }
            }

            self.fetch_queue.push_back(FetchedInst {
                inst,
                seq,
                on_correct_path: was_correct,
                data_addr,
                branch,
            });

            self.stats.fetched += 1;
            self.fetched_now += 1;
            width_left -= 1;

            let was_line_end = pc.is_line_end(line_bytes);
            self.fetch_pc = next_pc;
            if misfetch {
                self.stats.misfetches += 1;
                self.fetch_stall_until = self.cycle + u64::from(self.cfg.misfetch_penalty);
                break;
            }
            if stop_after || was_line_end {
                break;
            }
        }
    }

    /// Handles prediction for one fetched CTI. Returns the branch
    /// state, whether fetch must stop after it (taken discontinuity),
    /// and whether a misfetch bubble applies.
    fn fetch_cti(
        &mut self,
        pc: Addr,
        cti: bw_workload::CtiInfo,
        actual: Option<bw_workload::ResolvedCti>,
    ) -> (BranchState, bool, bool) {
        let mut prediction = None;
        let mut hist_ckpt = None;
        let mut ras_ckpt = None;
        let mut low_conf = false;
        let mut misfetch = false;

        let predicted_next = match cti.kind {
            CtiKind::CondBranch => {
                let (pred, ckpt) = if self.cfg.speculative_history {
                    let r = self.predictor.lookup(pc);
                    (r.pred, Some(r.ckpt))
                } else {
                    // Commit-time history: read-only prediction, no
                    // checkpoint needed (nothing speculative to repair).
                    (self.predictor.predict_nonspec(pc), None)
                };
                low_conf = match (&self.jrs, self.cfg.gating) {
                    (Some(jrs), _) => !jrs.is_high_confidence(pc, pred.meta.ghist),
                    (None, _) => pred.components_agree == Some(false),
                };
                prediction = Some(pred);
                hist_ckpt = ckpt;
                if pred.outcome.is_taken() {
                    let decode_target = cti.target.expect("conditional branches are direct");
                    match self.target_lookup(pc) {
                        // A tagged BTB hit is trusted outright; a
                        // line-granular next-line prediction is
                        // verified against decode, with a misfetch
                        // bubble when it disagrees.
                        Some(t) if self.nlp.is_none() || t == decode_target => t,
                        _ => {
                            misfetch = true;
                            decode_target
                        }
                    }
                } else {
                    // Not-taken: the target structure's result is
                    // unused (but was read).
                    let _ = self.target_lookup(pc);
                    pc.next()
                }
            }
            CtiKind::Jump | CtiKind::Call => {
                let decode_target = cti.target.expect("direct CTI");
                let predicted = self.target_lookup(pc);
                if predicted.is_none() || (self.nlp.is_some() && predicted != Some(decode_target)) {
                    misfetch = true;
                }
                if cti.kind == CtiKind::Call {
                    ras_ckpt = Some(self.ras.checkpoint());
                    self.ras.push(pc.next());
                    self.bact.ras_ops += 1;
                }
                cti.target.expect("direct CTI")
            }
            CtiKind::Return => {
                ras_ckpt = Some(self.ras.checkpoint());
                self.bact.ras_ops += 1;
                self.ras.pop()
            }
            CtiKind::IndirectJump => match self.target_lookup(pc) {
                Some(t) => t,
                None => pc.next(),
            },
        };

        if low_conf && self.cfg.gating.is_some() {
            self.low_conf_inflight += 1;
        }

        // A branch is mispredicted if fetch proceeded to the wrong
        // address OR the direction was wrong (even when the taken
        // target coincides with the fall-through, the machine recovers
        // so the speculative history can be repaired).
        let mispredicted = actual.is_some_and(|a| {
            a.next_pc != predicted_next || prediction.is_some_and(|p| p.outcome != a.outcome)
        });
        let stop_after = predicted_next != pc.next();
        (
            BranchState {
                prediction,
                hist_ckpt,
                ras_ckpt,
                predicted_next,
                actual,
                mispredicted,
                low_conf: low_conf && self.cfg.gating.is_some(),
            },
            stop_after,
            misfetch,
        )
    }

    /// Predicted fetch target for the CTI at `pc` from the configured
    /// target structure. For the next-line predictor the prediction is
    /// line-granular and unverified until decode.
    fn target_lookup(&mut self, pc: Addr) -> Option<Addr> {
        match &self.nlp {
            Some(nlp) => nlp.predict(pc),
            None => self.btb.lookup(pc),
        }
    }

    pub(crate) fn wrong_path_addr(&self, pc: Addr, seq: Seq) -> Addr {
        // Wrong-path loads mostly hit the same hot region real
        // wrong-path code touches; a quarter scatter over the working
        // set (and occupy memory ports until the squash).
        let h = mix(pc.0 ^ seq.wrapping_mul(0x9e37_79b9));
        let offset = if h.is_multiple_of(16) {
            mix(h) % self.working_set.max(64)
        } else {
            mix(h) % (8 * 1024)
        };
        Addr(0x1000_0000 + (offset & !7))
    }
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Computes the PPD's two pre-decode bits for the line containing
/// `pc`.
pub(crate) fn line_predecode(program: &StaticProgram, pc: Addr, line_bytes: u64) -> PpdBits {
    let line_start = Addr(pc.0 & !(line_bytes - 1));
    let slots = line_bytes / bw_types::INST_BYTES;
    let mut bits = PpdBits {
        has_cond: false,
        has_cti: false,
    };
    for i in 0..slots {
        let inst = program.decode(line_start.offset_insts(i));
        if inst.is_cond_branch() {
            bits.has_cond = true;
        }
        if inst.is_cti() {
            bits.has_cti = true;
        }
        if bits.has_cond && bits.has_cti {
            break;
        }
    }
    bits
}
