//! In-flight instruction state: fetch-queue entries, RUU entries, LSQ
//! entries.

use bw_predictors::{HistCheckpoint, Prediction};
use bw_types::{Addr, Cycle, Seq};
use bw_workload::{DecodedInst, ResolvedCti};

/// Checkpoint of RAS state (re-exported shape from `bw_predictors`).
pub(crate) use bw_predictors::RasCheckpoint;

/// Branch-related state carried by an in-flight CTI.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BranchState {
    /// Direction prediction (conditional branches only).
    pub prediction: Option<Prediction>,
    /// Speculative-history checkpoint (conditional branches only).
    pub hist_ckpt: Option<HistCheckpoint>,
    /// RAS checkpoint for CTIs that pushed/popped the stack.
    pub ras_ckpt: Option<RasCheckpoint>,
    /// The next PC fetch proceeded to after this instruction.
    pub predicted_next: Addr,
    /// Architectural resolution (correct-path instructions only).
    pub actual: Option<ResolvedCti>,
    /// `true` if `predicted_next` differs from the architectural next
    /// PC: resolving this branch redirects fetch and squashes.
    pub mispredicted: bool,
    /// `true` if the confidence estimator marked this branch low
    /// confidence (pipeline gating).
    pub low_conf: bool,
}

/// An instruction in the fetch buffer or decode/rename pipe.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FetchedInst {
    pub inst: DecodedInst,
    pub seq: Seq,
    pub on_correct_path: bool,
    /// Effective address for loads/stores (oracle on the correct path,
    /// hashed on the wrong path).
    pub data_addr: Option<Addr>,
    pub branch: Option<BranchState>,
}

/// Execution state of an RUU entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EntryState {
    /// Waiting on operands.
    Waiting,
    /// Operands ready; waiting for an issue slot.
    Ready,
    /// Issued; completion scheduled.
    Issued,
    /// Result available.
    Completed,
}

/// One register-update-unit (instruction window) entry.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RuuEntry {
    pub fi: FetchedInst,
    pub state: EntryState,
    /// Producer sequence numbers still outstanding.
    pub deps: [Option<Seq>; 2],
    /// For memory ops: whether the address has been computed (stores
    /// publish their address at issue).
    pub addr_known: bool,
    /// Completion cycle once issued.
    pub completes_at: Cycle,
}

impl RuuEntry {
    pub fn new(fi: FetchedInst, deps: [Option<Seq>; 2]) -> Self {
        RuuEntry {
            fi,
            state: EntryState::Waiting,
            deps,
            addr_known: false,
            completes_at: 0,
        }
    }

    pub fn is_mem(&self) -> bool {
        self.fi.inst.op.is_mem()
    }
}
