//! Set-associative caches and the TLB.

use bw_types::Addr;

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// A write-back, write-allocate set-associative cache with true LRU.
///
/// The cache models hits/misses and dirty evictions; data contents are
/// not stored (the simulator is a performance/power model).
///
/// # Examples
///
/// ```
/// use bw_uarch::{Cache, CacheConfig};
/// use bw_types::Addr;
///
/// let mut c = Cache::new(CacheConfig {
///     size_bytes: 1024,
///     assoc: 2,
///     line_bytes: 32,
///     hit_latency: 1,
/// });
/// assert!(!c.access(Addr(0x100), false).hit);
/// assert!(c.access(Addr(0x100), false).hit);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    line_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Result of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether the access (on a miss) evicted a dirty line that must
    /// be written back.
    pub writeback: bool,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (sizes not powers of two
    /// or not divisible).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = cfg.size_bytes / cfg.line_bytes;
        assert!(
            lines.is_multiple_of(u64::from(cfg.assoc)),
            "ways must divide lines"
        );
        let n_sets = lines / u64::from(cfg.assoc);
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            cfg,
            sets: vec![vec![Line::default(); cfg.assoc as usize]; n_sets as usize],
            set_mask: n_sets - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr.0 >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Records a hit that bypassed the full lookup: the warm path's
    /// shortcut for back-to-back accesses to the same line, which are
    /// hits by construction and already most-recently-used (so the
    /// counter bump is the access's entire observable effect).
    pub(crate) fn note_repeat_hit(&mut self) {
        self.hits += 1;
    }

    /// Accesses the line containing `addr`, allocating it on a miss.
    pub fn access(&mut self, addr: Addr, is_write: bool) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let ways = &mut self.sets[set];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= is_write;
            self.hits += 1;
            return AccessResult {
                hit: true,
                writeback: false,
            };
        }
        self.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("nonempty ways");
        let writeback = victim.valid && victim.dirty;
        *victim = Line {
            valid: true,
            dirty: is_write,
            tag,
            lru: tick,
        };
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Probes without allocating or touching LRU.
    #[must_use]
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// (hits, misses) so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss rate so far (0 if never accessed).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// TLB geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Miss penalty in cycles.
    pub miss_penalty: u32,
}

/// A fully-associative TLB with LRU replacement.
///
/// # Examples
///
/// ```
/// use bw_uarch::{Tlb, TlbConfig};
/// use bw_types::Addr;
///
/// let mut t = Tlb::new(TlbConfig { entries: 4, page_bytes: 4096, miss_penalty: 30 });
/// assert!(!t.access(Addr(0x1000)));
/// assert!(t.access(Addr(0x1fff))); // same page
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    pages: Vec<(u64, u64)>, // (page number, lru)
    page_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or the page size is not a power of
    /// two.
    #[must_use]
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0, "TLB needs entries");
        assert!(
            cfg.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            cfg,
            pages: Vec::with_capacity(cfg.entries as usize),
            page_shift: cfg.page_bytes.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> TlbConfig {
        self.cfg
    }

    /// Translates `addr`, returning `true` on a hit. Misses allocate.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.tick += 1;
        let page = addr.0 >> self.page_shift;
        if let Some(i) = self.pages.iter().position(|(p, _)| *p == page) {
            self.pages[i].1 = self.tick;
            self.hits += 1;
            // Move-to-front keeps hot pages at the head of the linear
            // scan. Observationally invisible: page numbers are unique
            // (so the lookup's result never depends on order) and LRU
            // ticks are unique (so victim selection never tie-breaks
            // on position).
            self.pages.swap(0, i);
            return true;
        }
        self.misses += 1;
        if self.pages.len() < self.cfg.entries as usize {
            self.pages.push((page, self.tick));
        } else {
            let victim = self
                .pages
                .iter_mut()
                .min_by_key(|(_, lru)| *lru)
                .expect("nonempty");
            *victim = (page, self.tick);
        }
        false
    }

    /// (hits, misses) so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_bytes: 32,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        let r = c.access(Addr(0x40), false);
        assert!(!r.hit && !r.writeback);
        assert!(c.access(Addr(0x40), false).hit);
        assert!(c.access(Addr(0x5f), false).hit, "same line");
        assert!(!c.access(Addr(0x60), false).hit, "next line");
    }

    #[test]
    fn lru_within_set() {
        // 256B/2-way/32B: 4 sets; addresses 0x000, 0x080, 0x100 share set 0.
        let mut c = small();
        c.access(Addr(0x000), false);
        c.access(Addr(0x080), false);
        c.access(Addr(0x000), false); // touch
        c.access(Addr(0x100), false); // evicts 0x080
        assert!(c.probe(Addr(0x000)));
        assert!(!c.probe(Addr(0x080)));
        assert!(c.probe(Addr(0x100)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(Addr(0x000), true); // dirty
        c.access(Addr(0x080), false);
        let r = c.access(Addr(0x100), false); // evicts dirty 0x000
        assert!(!r.hit);
        assert!(r.writeback);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(Addr(0x000), false);
        c.access(Addr(0x080), false);
        let r = c.access(Addr(0x100), false);
        assert!(!r.writeback);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = small();
        c.access(Addr(0), false);
        c.access(Addr(0), false);
        c.access(Addr(0x20), false);
        assert_eq!(c.stats(), (1, 2));
        assert!((c.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_l1_geometry_works() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 2,
            line_bytes: 32,
            hit_latency: 1,
        });
        // 1024 sets.
        for i in 0..2048u64 {
            c.access(Addr(i * 32), false);
        }
        // Working set == capacity: everything should still be resident.
        assert!(c.probe(Addr(0)));
        assert!(c.probe(Addr(2047 * 32)));
    }

    #[test]
    fn tlb_hit_within_page_miss_across() {
        let mut t = Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_penalty: 30,
        });
        assert!(!t.access(Addr(0x0000)));
        assert!(t.access(Addr(0x0fff)));
        assert!(!t.access(Addr(0x1000)));
        assert!(!t.access(Addr(0x2000))); // evicts LRU (page 0)
        assert!(!t.access(Addr(0x0000)));
        assert_eq!(t.stats().0, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 96,
            assoc: 2,
            line_bytes: 24,
            hit_latency: 1,
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #[test]
        fn cache_never_holds_more_distinct_lines_than_capacity(
            addrs in proptest::collection::vec(0u64..4096, 1..200)
        ) {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 256, assoc: 2, line_bytes: 32, hit_latency: 1,
            });
            for &a in &addrs {
                c.access(Addr(a & !31), false);
            }
            let resident: HashSet<u64> = (0u64..4096 / 32)
                .filter(|i| c.probe(Addr(i * 32)))
                .collect();
            prop_assert!(resident.len() <= 8, "resident {} > capacity", resident.len());
        }

        #[test]
        fn most_recent_access_always_resident(
            addrs in proptest::collection::vec(0u64..8192, 1..100)
        ) {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 512, assoc: 2, line_bytes: 32, hit_latency: 1,
            });
            for &a in &addrs {
                c.access(Addr(a), false);
                prop_assert!(c.probe(Addr(a)));
            }
        }
    }
}
