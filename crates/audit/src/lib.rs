//! Runtime invariant checking for the branchwatt simulator.
//!
//! This crate is the dependency-free core of the `audit` feature: a
//! generic [`Invariant`] trait, a [`Registry`] that evaluates
//! invariants at pipeline [`Boundary`] points, and the [`Violation`]
//! record a failed check produces.
//!
//! The sanitizer is **observation-only**: invariants receive a
//! read-only context snapshot and must never influence simulation
//! state. `bw-uarch` and `bw-power` define the concrete contexts and
//! invariant implementations; this crate just runs them and collects
//! what they find.
//!
//! # Examples
//!
//! ```
//! use bw_audit::{Boundary, Invariant, Registry};
//!
//! struct NonNegative;
//! impl Invariant<i64> for NonNegative {
//!     fn name(&self) -> &'static str {
//!         "non-negative"
//!     }
//!     fn boundary(&self) -> Boundary {
//!         Boundary::Cycle
//!     }
//!     fn check(&mut self, ctx: &i64) -> Result<(), String> {
//!         if *ctx >= 0 {
//!             Ok(())
//!         } else {
//!             Err(format!("saw {ctx}"))
//!         }
//!     }
//! }
//!
//! let mut reg = Registry::new("gzip");
//! reg.register(Box::new(NonNegative));
//! reg.check_at(Boundary::Cycle, 1, &5);
//! reg.check_at(Boundary::Cycle, 2, &-3);
//! assert!(!reg.is_clean());
//! assert_eq!(reg.violations()[0].invariant, "non-negative");
//! assert_eq!(reg.violations()[0].cycle, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Where in the simulation loop an invariant is evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Boundary {
    /// At the end of every simulated cycle.
    Cycle,
    /// After each instruction retires.
    Commit,
    /// After misprediction recovery (squash + state repair).
    Recovery,
    /// At every boundary.
    Any,
}

/// One failed invariant check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The invariant's name.
    pub invariant: &'static str,
    /// Simulated cycle at which the check failed.
    pub cycle: u64,
    /// Benchmark the machine was running.
    pub benchmark: String,
    /// What the invariant saw.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} @ cycle {}: {}",
            self.invariant, self.benchmark, self.cycle, self.detail
        )
    }
}

/// A checkable simulator invariant over a context snapshot `Ctx`.
///
/// Implementations may keep internal state across checks (e.g. an
/// energy ledger accumulating per-cycle deltas) — hence `&mut self` —
/// but must treat `ctx` as read-only.
pub trait Invariant<Ctx: ?Sized>: Send {
    /// Stable name, reported in violations.
    fn name(&self) -> &'static str;

    /// The boundary this invariant runs at ([`Boundary::Any`] for
    /// every boundary).
    fn boundary(&self) -> Boundary;

    /// Evaluates the invariant; `Err(detail)` records a violation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of what was violated.
    fn check(&mut self, ctx: &Ctx) -> Result<(), String>;
}

/// Keep at most this many violation records; later failures only bump
/// the count (a broken invariant typically fails every cycle).
const VIOLATION_CAP: usize = 64;

/// A set of invariants plus the violations they have produced.
pub struct Registry<Ctx: ?Sized> {
    benchmark: String,
    invariants: Vec<Box<dyn Invariant<Ctx>>>,
    violations: Vec<Violation>,
    total_violations: u64,
    checks_run: u64,
}

impl<Ctx: ?Sized> Registry<Ctx> {
    /// An empty registry for one benchmark run.
    #[must_use]
    pub fn new(benchmark: &str) -> Self {
        Registry {
            benchmark: benchmark.to_string(),
            invariants: Vec::new(),
            violations: Vec::new(),
            total_violations: 0,
            checks_run: 0,
        }
    }

    /// Adds an invariant.
    pub fn register(&mut self, inv: Box<dyn Invariant<Ctx>>) {
        self.invariants.push(inv);
    }

    /// Number of registered invariants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// `true` if no invariants are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Runs every invariant registered for `boundary` (or
    /// [`Boundary::Any`]) against `ctx`.
    pub fn check_at(&mut self, boundary: Boundary, cycle: u64, ctx: &Ctx) {
        for inv in &mut self.invariants {
            let at = inv.boundary();
            if at != boundary && at != Boundary::Any {
                continue;
            }
            self.checks_run += 1;
            if let Err(detail) = inv.check(ctx) {
                self.total_violations += 1;
                if self.violations.len() < VIOLATION_CAP {
                    self.violations.push(Violation {
                        invariant: inv.name(),
                        cycle,
                        benchmark: self.benchmark.clone(),
                        detail,
                    });
                }
            }
        }
    }

    /// `true` if no check has failed so far.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// The recorded violations (capped; see [`Registry::total_violations`]).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total failed checks, including those beyond the record cap.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Total individual checks evaluated.
    #[must_use]
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }

    /// Consumes the registry, returning the recorded violations.
    #[must_use]
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    /// One-line summary: `"clean (N checks)"` or `"M violation(s) in N
    /// checks"`.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("clean ({} checks)", self.checks_run)
        } else {
            format!(
                "{} violation(s) in {} checks",
                self.total_violations, self.checks_run
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysFail(Boundary);
    impl Invariant<u64> for AlwaysFail {
        fn name(&self) -> &'static str {
            "always-fail"
        }
        fn boundary(&self) -> Boundary {
            self.0
        }
        fn check(&mut self, ctx: &u64) -> Result<(), String> {
            Err(format!("ctx {ctx}"))
        }
    }

    struct Pass;
    impl Invariant<u64> for Pass {
        fn name(&self) -> &'static str {
            "pass"
        }
        fn boundary(&self) -> Boundary {
            Boundary::Any
        }
        fn check(&mut self, _ctx: &u64) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn boundary_filtering() {
        let mut reg = Registry::new("b");
        reg.register(Box::new(AlwaysFail(Boundary::Commit)));
        reg.check_at(Boundary::Cycle, 1, &0);
        assert!(reg.is_clean());
        reg.check_at(Boundary::Commit, 2, &0);
        assert_eq!(reg.total_violations(), 1);
        assert_eq!(reg.violations()[0].cycle, 2);
        assert_eq!(reg.violations()[0].benchmark, "b");
    }

    #[test]
    fn any_boundary_runs_everywhere() {
        let mut reg = Registry::new("b");
        reg.register(Box::new(Pass));
        for bnd in [Boundary::Cycle, Boundary::Commit, Boundary::Recovery] {
            reg.check_at(bnd, 0, &0);
        }
        assert_eq!(reg.checks_run(), 3);
        assert!(reg.is_clean());
        assert!(reg.summary().contains("clean"));
    }

    #[test]
    fn violation_records_are_capped_but_counted() {
        let mut reg = Registry::new("b");
        reg.register(Box::new(AlwaysFail(Boundary::Cycle)));
        for c in 0..200 {
            reg.check_at(Boundary::Cycle, c, &0);
        }
        assert_eq!(reg.total_violations(), 200);
        assert_eq!(reg.violations().len(), VIOLATION_CAP);
        assert!(reg.summary().contains("200 violation(s)"));
    }

    #[test]
    fn stateful_invariants_keep_state() {
        struct Monotonic(u64);
        impl Invariant<u64> for Monotonic {
            fn name(&self) -> &'static str {
                "monotonic"
            }
            fn boundary(&self) -> Boundary {
                Boundary::Cycle
            }
            fn check(&mut self, ctx: &u64) -> Result<(), String> {
                if *ctx < self.0 {
                    return Err(format!("{ctx} < {}", self.0));
                }
                self.0 = *ctx;
                Ok(())
            }
        }
        let mut reg = Registry::new("b");
        reg.register(Box::new(Monotonic(0)));
        reg.check_at(Boundary::Cycle, 0, &1);
        reg.check_at(Boundary::Cycle, 1, &5);
        reg.check_at(Boundary::Cycle, 2, &3);
        assert_eq!(reg.total_violations(), 1);
        let display = format!("{}", reg.violations()[0]);
        assert!(display.contains("[monotonic]"), "{display}");
    }
}
